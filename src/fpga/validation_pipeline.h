/// @file
/// Real-thread validation pipeline: the software stand-in for the FPGA
/// in the live ROCoCoTM runtime.
///
/// A dedicated worker thread owns a ValidationEngine and drains the
/// pull queue in arrival order, exactly like the hardware pipeline
/// drains cachelines (Fig. 6 (b)). Executing threads submit requests
/// and block on the verdict. Unlike the hardware, the worker shares the
/// CPU with the executors, so its *throughput* is not representative —
/// the paper-shaped timing figures come from the discrete-event
/// simulator (src/sim); this class provides the *functional* offload
/// for the real runtime and its tests.
#pragma once

#include <atomic>
#include <future>
#include <memory>
#include <thread>

#include "common/queue.h"
#include "fpga/validation_engine.h"

namespace rococo::fpga {

class ValidationPipeline
{
  public:
    explicit ValidationPipeline(const EngineConfig& config = {});
    ~ValidationPipeline();

    ValidationPipeline(const ValidationPipeline&) = delete;
    ValidationPipeline& operator=(const ValidationPipeline&) = delete;

    /// Enqueue a request; the future resolves when the engine has
    /// decided.
    std::future<core::ValidationResult> submit(OffloadRequest request);

    /// submit() + wait.
    core::ValidationResult validate(OffloadRequest request);

    /// Snapshot of the engine's verdict counters (thread-safe),
    /// including the queue's observed high-water mark
    /// ("queue_high_water") — the back-pressure the paper avoids by
    /// keeping the pipeline free of stalls (§5.1).
    CounterBag stats() const;

    /// Signature geometry shared with CPU-side eager detection.
    std::shared_ptr<const sig::SignatureConfig> signature_config() const;

    /// Stop the worker; pending requests are drained first. Idempotent.
    void stop();

  private:
    struct Item
    {
        OffloadRequest request;
        std::promise<core::ValidationResult> promise;
    };

    void worker_loop();

    EngineConfig config_;
    std::atomic<size_t> high_water_{0};
    mutable std::mutex engine_mutex_;
    ValidationEngine engine_;
    BlockingQueue<Item> queue_;
    std::thread worker_;
};

} // namespace rococo::fpga
