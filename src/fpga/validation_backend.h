/// @file
/// Abstract validation backend: the seam between the TM runtime and
/// whatever actually runs the ROCoCo reachability check. Two
/// implementations exist:
///
///   * fpga::ValidationPipeline — the in-process worker thread that
///     owns a ValidationEngine (the single-address-space deployment of
///     the paper, Fig. 6 (b));
///   * svc::ValidationClient — a socket client of the networked
///     validation service (src/svc), where one server-owned engine and
///     sliding window are shared by many client processes, the way one
///     FPGA serves a whole socket's worth of executors over CCI.
///
/// RococoTm selects the backend from its config; everything above this
/// interface is identical either way.
#pragma once

#include <chrono>
#include <future>
#include <memory>

#include "common/stats.h"
#include "fpga/detector.h"
#include "obs/registry.h"

namespace rococo::fpga {

class ValidationBackend
{
  public:
    virtual ~ValidationBackend() = default;

    /// Enqueue a request; the future resolves when a verdict exists —
    /// including shutdown/backpressure verdicts, never a broken
    /// promise.
    virtual std::future<core::ValidationResult> submit(
        OffloadRequest request) = 0;

    /// submit() + wait.
    virtual core::ValidationResult validate(OffloadRequest request) = 0;

    /// submit() + wait at most @p timeout; on expiry returns a
    /// Verdict::kTimeout result with obs::AbortReason::kTimeout (the
    /// late verdict, if any, is discarded).
    virtual core::ValidationResult validate(
        OffloadRequest request, std::chrono::nanoseconds timeout) = 0;

    /// Backend-side counters (verdicts, submissions, queue/backlog
    /// occupancy — see the concrete class for the exact keys).
    virtual CounterBag stats() const = 0;

    /// Export backend metrics into @p registry.
    virtual void export_metrics(obs::Registry& registry) const = 0;

    /// Signature geometry shared with CPU-side eager detection. For the
    /// service client this is derived from the same EngineConfig the
    /// server was started with — the two must agree.
    virtual std::shared_ptr<const sig::SignatureConfig> signature_config()
        const = 0;

    /// Stop the backend; outstanding futures resolve (with real or
    /// aborted verdicts). Idempotent.
    virtual void stop() = 0;
};

} // namespace rococo::fpga
