#include "fpga/validation_engine.h"

namespace rococo::fpga {

ValidationEngine::ValidationEngine(const EngineConfig& config)
    : config_(config), link_(config.link),
      sig_config_(std::make_shared<const sig::SignatureConfig>(
          config.signature_bits, config.signature_hashes, config.hash_seed)),
      detector_(config.window, sig_config_), manager_(config.window)
{
}

core::ValidationResult
ValidationEngine::process(const OffloadRequest& request)
{
    if (request.writes.empty() && !config_.strict_read_only) {
        // Read-only fast path: committed directly on the CPU (§5.3);
        // requests should normally not even reach the engine.
        return {core::Verdict::kCommit, 0, obs::AbortReason::kNone};
    }

    if (request.snapshot_cid < manager_.window_start() &&
        !request.reads.empty()) {
        // The snapshot predates the window: updates of evicted commits
        // may have been neglected (§4.2).
        return {core::Verdict::kWindowOverflow, 0,
                obs::AbortReason::kWindowEviction};
    }

    detector_.classify_into(request, &classify_scratch_);
    return commit_classified(classify_scratch_, request);
}

core::ValidationRequest
ValidationEngine::classify(const OffloadRequest& request) const
{
    return detector_.classify(request);
}

void
ValidationEngine::classify_into(const OffloadRequest& request,
                                core::ValidationRequest* out) const
{
    detector_.classify_into(request, out);
}

core::Verdict
ValidationEngine::validate_only(
    const core::ValidationRequest& classified) const
{
    return manager_.validator().validate_only(classified);
}

core::ValidationResult
ValidationEngine::commit_classified(
    const core::ValidationRequest& classified, const OffloadRequest& request)
{
    const core::ValidationResult result = manager_.decide(classified);
    if (result.verdict == core::Verdict::kCommit) {
        detector_.record_commit(result.cid, request);
    } else if (result.verdict == core::Verdict::kAbortCycle &&
               result.conflict_cid != core::kNoConflictCid) {
        record_conflict(request, result.conflict_cid);
    }
    return result;
}

void
ValidationEngine::record_conflict([[maybe_unused]] const OffloadRequest&
                                      request,
                                  [[maybe_unused]] uint64_t conflict_cid)
{
#ifndef ROCOCO_FORENSICS_OFF
    if (config_.forensics_sample == 0 ||
        ++cycle_aborts_ % config_.forensics_sample != 0) {
        return;
    }
    // Hot-key attribution: ask the detector which of this request's
    // addresses actually matched the conflicting commit's
    // signatures, and feed them to the sketch. Fixed-size buffers
    // throughout — the abort path stays allocation-free.
    uint64_t addrs[obs::TopK::kCapacity];
    const size_t n = detector_.conflicting_addresses(
        request, conflict_cid, addrs, obs::TopK::kCapacity);
    for (size_t i = 0; i < n; ++i) conflict_topk_.offer(addrs[i]);
#endif
}

double
ValidationEngine::isolated_latency_ns(const OffloadRequest& request) const
{
    return link_.isolated_latency_ns(request.reads.size(),
                                     request.writes.size());
}

} // namespace rococo::fpga
