#include "fpga/detector.h"

#include "common/check.h"

namespace rococo::fpga {
namespace {

bool
any_query(const sig::BloomSignature& signature,
          std::span<const uint64_t> addrs)
{
    for (uint64_t addr : addrs) {
        if (signature.query(addr)) return true;
    }
    return false;
}

} // namespace

ConflictDetector::ConflictDetector(
    size_t window, std::shared_ptr<const sig::SignatureConfig> config)
    : window_(window), config_(std::move(config))
{
    ROCOCO_CHECK(window_ > 0);
}

core::ValidationRequest
ConflictDetector::classify(const OffloadRequest& request) const
{
    core::ValidationRequest out;
    for (const Entry& entry : history_) {
        const bool read_overlap = any_query(entry.write_sig, request.reads);
        const bool waw = any_query(entry.write_sig, request.writes);
        const bool war = any_query(entry.read_sig, request.writes);
        if (entry.cid >= request.snapshot_cid && read_overlap) {
            out.forward.push_back(entry.cid);
        }
        if (waw || war || (entry.cid < request.snapshot_cid && read_overlap)) {
            out.backward.push_back(entry.cid);
        }
    }
    return out;
}

void
ConflictDetector::record_commit(uint64_t cid, const OffloadRequest& request)
{
    Entry entry{cid, sig::BloomSignature(config_),
                sig::BloomSignature(config_)};
    for (uint64_t addr : request.reads) entry.read_sig.insert(addr);
    for (uint64_t addr : request.writes) entry.write_sig.insert(addr);
    ROCOCO_DCHECK(history_.empty() || history_.back().cid < cid);
    history_.push_back(std::move(entry));
    if (history_.size() > window_) history_.pop_front();
}

uint64_t
ConflictDetector::history_start() const
{
    return history_.empty() ? 0 : history_.front().cid;
}

} // namespace rococo::fpga
