#include "fpga/detector.h"

#include <bit>
#include <cstring>

#include "common/check.h"

namespace rococo::fpga {

ConflictDetector::ConflictDetector(
    size_t window, std::shared_ptr<const sig::SignatureConfig> config)
    : window_(window), config_(std::move(config)),
      read_plane_(window, config_), write_plane_(window, config_),
      cids_(window, 0), scratch_(2 * read_plane_.mask_words(), 0),
      classify_fn_(sig::classify_kernel_fn(read_plane_.kernel()))
{
    ROCOCO_CHECK(window_ > 0);
}

core::ValidationRequest
ConflictDetector::classify(const OffloadRequest& request) const
{
    core::ValidationRequest out;
    classify_into(request, &out);
    return out;
}

void
ConflictDetector::classify_into(const OffloadRequest& request,
                                core::ValidationRequest* out) const
{
    // Worst case emits every slot into one vector, so a window-sized
    // reserve (no-op once satisfied) makes the steady state exactly
    // allocation-free — not just amortized: a late bloom coincidence
    // can otherwise push the emission count past any observed
    // high-water and grow capacity mid-flight.
    out->forward.reserve(window_);
    out->backward.reserve(window_);
    out->forward.clear();
    out->backward.clear();
    if (size_ == 0) return;

    // One pass over the address sets builds the full W-bit dependency
    // vectors — k column loads + ANDs per address (Fig. 5's comparator
    // array), instead of re-querying every history signature:
    //   rd: slots whose committed write set may intersect our reads
    //       (W_c ∩ R — the forward-or-RAW edge, split by snapshot)
    //   wr: slots whose committed write or read set may intersect our
    //       writes (WAW | WAR — always backward)
    const size_t mask_words = read_plane_.mask_words();
    uint64_t* rd = scratch_.data();
    uint64_t* wr = scratch_.data() + mask_words;
    std::memset(rd, 0, 2 * mask_words * sizeof(uint64_t));
    classify_fn_(read_plane_.view(), write_plane_.view(),
                 request.reads.data(), request.reads.size(),
                 request.writes.data(), request.writes.size(), rd, wr);

    // Emit cids oldest-first (the order the row-major walk produced):
    // the ring is two ascending slot ranges, and within each the set
    // bits of rd|wr are scanned directly — O(hits) emission instead of
    // a branch per window slot, which matters because the match vector
    // is nearly always sparse.
    auto emit = [&](size_t lo, size_t hi) { // slots [lo, hi), ascending
        for (size_t w = lo >> 6; w < (hi + 63) >> 6; ++w) {
            uint64_t combined = rd[w] | wr[w];
            if (w == lo >> 6 && (lo & 63) != 0) {
                combined &= ~uint64_t{0} << (lo & 63);
            }
            if (w == (hi - 1) >> 6 && (hi & 63) != 0) {
                combined &= (uint64_t{1} << (hi & 63)) - 1;
            }
            while (combined != 0) {
                const unsigned b =
                    static_cast<unsigned>(std::countr_zero(combined));
                combined &= combined - 1;
                const uint64_t slot_mask = uint64_t{1} << b;
                const bool read_overlap = (rd[w] & slot_mask) != 0;
                const bool write_overlap = (wr[w] & slot_mask) != 0;
                const uint64_t cid = cids_[w * 64 + b];
                if (read_overlap && cid >= request.snapshot_cid) {
                    out->forward.push_back(cid);
                }
                if (write_overlap ||
                    (read_overlap && cid < request.snapshot_cid)) {
                    out->backward.push_back(cid);
                }
            }
        }
    };
    if (head_ + size_ > window_) {
        emit(head_, window_);
        emit(0, head_ + size_ - window_);
    } else {
        emit(head_, head_ + size_);
    }
}

core::ValidationRequest
ConflictDetector::classify_scalar(const OffloadRequest& request) const
{
    // The seed implementation's loop, verbatim against the row-major
    // shadow: for every history entry (oldest first), query each
    // address with early exit.
    auto any_query = [](const sig::SlicedSignatureHistory& plane,
                        size_t slot, std::span<const uint64_t> addrs) {
        for (uint64_t addr : addrs) {
            if (plane.query(slot, addr)) return true;
        }
        return false;
    };

    core::ValidationRequest out;
    size_t slot = head_;
    for (size_t i = 0; i < size_; ++i) {
        const uint64_t cid = cids_[slot];
        const bool read_overlap = any_query(write_plane_, slot, request.reads);
        const bool waw = any_query(write_plane_, slot, request.writes);
        const bool war = any_query(read_plane_, slot, request.writes);
        if (cid >= request.snapshot_cid && read_overlap) {
            out.forward.push_back(cid);
        }
        if (waw || war || (cid < request.snapshot_cid && read_overlap)) {
            out.backward.push_back(cid);
        }
        if (++slot == window_) slot = 0;
    }
    return out;
}

void
ConflictDetector::record_commit(uint64_t cid, const OffloadRequest& request)
{
    ROCOCO_DCHECK(size_ == 0 ||
                  cids_[(head_ + size_ - 1) % window_] < cid);
    size_t slot;
    if (size_ == window_) {
        // Full: evict the oldest — clear only the bits its signatures
        // set (the row image remembers them) and reuse its slot.
        slot = head_;
        read_plane_.clear_slot(slot);
        write_plane_.clear_slot(slot);
        if (++head_ == window_) head_ = 0;
    } else {
        slot = head_ + size_;
        if (slot >= window_) slot -= window_;
        ++size_;
    }
    cids_[slot] = cid;
    for (uint64_t addr : request.reads) read_plane_.insert(slot, addr);
    for (uint64_t addr : request.writes) write_plane_.insert(slot, addr);
}

size_t
ConflictDetector::conflicting_addresses(const OffloadRequest& request,
                                        uint64_t cid, uint64_t* out,
                                        size_t capacity) const
{
    // cid c always lands in slot c % W (the ring starts at slot 0 and
    // eviction reuses the evictee's slot, which is the same residue).
    const size_t slot = static_cast<size_t>(cid % window_);
    if (size_ == 0 || cids_[slot] != cid) return 0;
    size_t n = 0;
    for (uint64_t addr : request.reads) {
        if (n == capacity) return n;
        if (write_plane_.query(slot, addr)) out[n++] = addr;
    }
    for (uint64_t addr : request.writes) {
        if (n == capacity) return n;
        if (write_plane_.query(slot, addr) ||
            read_plane_.query(slot, addr)) {
            out[n++] = addr;
        }
    }
    return n;
}

uint64_t
ConflictDetector::history_start() const
{
    return size_ == 0 ? 0 : cids_[head_];
}

void
ConflictDetector::set_match_kernel(sig::MatchKernel kernel)
{
    read_plane_.set_kernel(kernel);
    write_plane_.set_kernel(kernel);
    classify_fn_ = sig::classify_kernel_fn(kernel);
}

} // namespace rococo::fpga
