/// @file
/// Timing model of the HARP2 CPU-FPGA interconnect and of the pipelined
/// validation engine (§6.2, Fig. 6).
///
/// The paper measures a sub-600 ns cacheline round trip over the
/// CCI/QPI low-latency channel (~200 ns FPGA read hit to the shared
/// LLC, <400 ns write back) and clocks the engine at 200 MHz. This
/// model turns those constants into the per-request latency/throughput
/// figures the discrete-event simulator and the Fig. 6/Fig. 11 benches
/// need. It is a *model*: no hardware is required, and every constant
/// can be overridden to explore other platforms (e.g. PCIe-attached
/// FPGAs with >1 us round trips, footnote 8).
#pragma once

#include <cstdint>

namespace rococo::fpga {

/// Link and pipeline timing parameters. Defaults reproduce HARP2.
struct LinkParams
{
    double read_hit_ns = 200.0;   ///< FPGA read hit to shared LLC
    double write_back_ns = 400.0; ///< FPGA write back to LLC
    double clock_mhz = 200.0;     ///< validation engine clock
    unsigned pipeline_depth = 24; ///< detector+manager stages
    /// Addresses (64-bit words) carried per cacheline message.
    unsigned words_per_cacheline = 8;
    /// Link cycles to transfer/arbitrate one cacheline; bounds the
    /// request service rate (out-of-core bandwidth, the ssca2
    /// bottleneck of §6.3).
    unsigned cycles_per_cacheline = 2;
};

/// Derived timing of one offloaded validation request.
class CciLinkModel
{
  public:
    explicit CciLinkModel(const LinkParams& params = {});

    const LinkParams& params() const { return params_; }

    double clock_period_ns() const { return 1000.0 / params_.clock_mhz; }

    /// CPU-to-FPGA-to-CPU message latency excluding pipeline occupancy.
    double round_trip_ns() const
    {
        return params_.read_hit_ns + params_.write_back_ns;
    }

    /// Cachelines needed to ship a request of @p reads + @p writes
    /// addresses (one verdict line comes back).
    uint64_t request_cachelines(uint64_t reads, uint64_t writes) const;

    /// Cycles the request occupies the address stream of the pipeline:
    /// the detector ingests one cacheline — words_per_cacheline
    /// addresses hashed in parallel lanes — per cycle (hence the
    /// lanes x hashes DSP multipliers of the resource model).
    uint64_t occupancy_cycles(uint64_t reads, uint64_t writes) const;

    /// Latency through the pipeline (depth + occupancy), in ns.
    double pipeline_latency_ns(uint64_t reads, uint64_t writes) const;

    /// End-to-end validation latency of an isolated request, in ns.
    double isolated_latency_ns(uint64_t reads, uint64_t writes) const;

    /// Fully-pipelined service interval: a new request can be accepted
    /// once the previous one's addresses have streamed in, in ns.
    double service_interval_ns(uint64_t reads, uint64_t writes) const;

  private:
    LinkParams params_;
};

} // namespace rococo::fpga
