#include "fpga/resource_model.h"

#include <cmath>
#include <cstdio>

namespace rococo::fpga {
namespace {

// Cost coefficients, calibrated at (W=64, m=512, k=4, lanes=8); see the
// header comment. Each term names the hardware structure it accounts
// for.

// Registers: fixed CCI-P shim + queue control, the 2 x W x W matrix
// (R and its transpose network), m-bit signature pipeline stages and
// per-window-slot control state.
constexpr uint64_t kRegFixed = 59981;
constexpr uint64_t kRegPerMatrixBit = 2;
constexpr uint64_t kRegPerSigBit = 80;
constexpr uint64_t kRegPerSlot = 68;

// ALMs: fixed shim, matrix update logic, per-signature-bit OR/AND
// reduction trees, per-slot comparators.
constexpr uint64_t kAlmFixed = 62818;
constexpr uint64_t kAlmPerMatrixBit = 4;
constexpr uint64_t kAlmPerSigBit = 320;
constexpr uint64_t kAlmPerSlot = 100;

// DSPs: multiply-shift hash units, one multiplier chain per (address
// lane x hash function), plus a fixed block for the CCI-P shim.
constexpr uint64_t kDspFixed = 31;
constexpr uint64_t kDspPerHashLane = 6;

// BRAM bits: platform buffers, pull/push queue rings (2 x 1024 lines x
// 512 bits) and the signature history (2 signatures per window slot).
constexpr uint64_t kBramFixed = 941690;
constexpr uint64_t kBramQueues = 2ull * 1024 * 512;

} // namespace

ResourceEstimate
estimate_resources(const ResourceParams& params, const DeviceCapacity& device)
{
    const uint64_t w = params.window;
    const uint64_t m = params.signature_bits;
    const uint64_t k = params.signature_hashes;

    ResourceEstimate out;
    out.registers = kRegFixed + kRegPerMatrixBit * w * w +
                    kRegPerSigBit * m + kRegPerSlot * w;
    out.alms = kAlmFixed + kAlmPerMatrixBit * w * w + kAlmPerSigBit * m +
               kAlmPerSlot * w;
    out.dsps = kDspFixed + kDspPerHashLane * params.address_lanes * k;
    out.bram_bits = kBramFixed + kBramQueues + 2ull * w * m;

    // The m-bit bloom reduction is the critical path at the reference
    // point (200 MHz at m=512); wider signatures and larger windows
    // deepen the reduction trees logarithmically.
    double clock = 200.0;
    if (m > 512) clock /= 1.0 + 0.25 * std::log2(static_cast<double>(m) / 512.0);
    if (m < 512) clock *= 1.0 + 0.10 * std::log2(512.0 / static_cast<double>(m));
    if (w > 64) clock /= 1.0 + 0.10 * std::log2(static_cast<double>(w) / 64.0);
    out.clock_mhz = clock;

    auto pct = [](uint64_t used, uint64_t total) {
        return 100.0 * static_cast<double>(used) / static_cast<double>(total);
    };
    out.registers_pct = pct(out.registers, device.registers);
    out.alms_pct = pct(out.alms, device.alms);
    out.dsps_pct = pct(out.dsps, device.dsps);
    out.bram_pct = pct(out.bram_bits, device.bram_bits);
    return out;
}

std::string
to_string(const ResourceEstimate& e)
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%llu (%.1f%%) registers, %llu (%.2f%%) ALMs, "
                  "%llu (%.1f%%) DSPs, %llu (%.1f%%) BRAM bits @ %.0f MHz",
                  static_cast<unsigned long long>(e.registers),
                  e.registers_pct,
                  static_cast<unsigned long long>(e.alms), e.alms_pct,
                  static_cast<unsigned long long>(e.dsps), e.dsps_pct,
                  static_cast<unsigned long long>(e.bram_bits), e.bram_pct,
                  e.clock_mhz);
    return buf;
}

} // namespace rococo::fpga
