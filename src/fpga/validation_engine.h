/// @file
/// The complete FPGA validation engine: Detector + Manager in lockstep
/// (Fig. 5), plus the link timing model. This is the functional model —
/// call process() per request, in commit-arrival order. Concurrency and
/// queueing live one level up (ValidationPipeline for real threads, the
/// discrete-event simulator for modelled time).
#pragma once

#include <cstdint>
#include <memory>

#include "common/stats.h"
#include "fpga/cci_link.h"
#include "fpga/detector.h"
#include "fpga/manager.h"
#include "obs/topk.h"

namespace rococo::fpga {

/// Engine configuration; defaults reproduce the paper's deployment
/// (W = 64, 512-bit signatures, HARP2 link timings).
struct EngineConfig
{
    size_t window = 64;
    unsigned signature_bits = 512;
    unsigned signature_hashes = 4;
    uint64_t hash_seed = 42;
    /// Validate read-only transactions through the full cycle check
    /// instead of the paper's direct-commit fast path.
    bool strict_read_only = false;
    /// Hot-key forensics sampling: feed the conflict top-K sketch on
    /// every Nth cycle abort (1 = every abort, 0 = never). Only the
    /// abort path pays; compiled out entirely under ROCOCO_FORENSICS_OFF.
    unsigned forensics_sample = 1;
    LinkParams link;
};

/// Functional + timing model of the offloaded validation phase.
class ValidationEngine
{
  public:
    explicit ValidationEngine(const EngineConfig& config = {});

    const EngineConfig& config() const { return config_; }
    const CciLinkModel& link() const { return link_; }

    /// Signature geometry shared with CPU-side eager detection.
    const std::shared_ptr<const sig::SignatureConfig>& signature_config()
        const
    {
        return sig_config_;
    }

    /// Process one validation request (classification + reachability
    /// check + bookkeeping on commit).
    core::ValidationResult process(const OffloadRequest& request);

    /// The Detector half of process(): classify @p request against the
    /// current history without touching state.
    core::ValidationRequest classify(const OffloadRequest& request) const;

    /// classify() into caller-owned storage, reusing @p out's capacity
    /// (the zero-allocation hot path). Callers must serialize per
    /// engine, as they already do for process().
    void classify_into(const OffloadRequest& request,
                       core::ValidationRequest* out) const;

    /// Validate @p classified without committing — no window mutation,
    /// no verdict counters. The reserve phase of the cross-shard
    /// two-phase coordinator (src/shard) holds the shard lock between
    /// this and commit_classified(), so the verdict cannot go stale.
    core::Verdict validate_only(const core::ValidationRequest& classified)
        const;

    /// The Manager half of process(): decide-and-commit a request
    /// previously built by classify(); records the commit's signatures
    /// on kCommit.
    core::ValidationResult commit_classified(
        const core::ValidationRequest& classified,
        const OffloadRequest& request);

    /// Feed the hot-key forensics sketch for an abort attributed to
    /// engine-local commit @p conflict_cid: the addresses of
    /// @p request that actually matched that commit's signatures.
    /// commit_classified() calls this on its own cycle aborts; the
    /// shard router calls it for aborts its coordinator raises before
    /// reaching the manager (fence rejections, reserve-phase cycles),
    /// which would otherwise never reach the sketch. Sampled per
    /// EngineConfig::forensics_sample; same serialization contract as
    /// process().
    void record_conflict(const OffloadRequest& request,
                         uint64_t conflict_cid);

    /// Modelled end-to-end latency of @p request when the pipeline is
    /// otherwise idle, in ns.
    double isolated_latency_ns(const OffloadRequest& request) const;

    uint64_t next_cid() const { return manager_.next_cid(); }
    uint64_t window_start() const { return manager_.window_start(); }

    /// Verdict counters.
    const CounterBag& stats() const { return manager_.stats(); }

    const ConflictDetector& detector() const { return detector_; }
    const Manager& manager() const { return manager_; }

    /// Hot-key attribution sketch: the addresses of conflicting
    /// read/write-set entries, sampled on the cycle-abort path (see
    /// EngineConfig::forensics_sample). Same serialization contract as
    /// process() — read it under whatever lock serializes the engine.
    const obs::TopK& conflict_topk() const { return conflict_topk_; }

  private:
    EngineConfig config_;
    CciLinkModel link_;
    std::shared_ptr<const sig::SignatureConfig> sig_config_;
    ConflictDetector detector_;
    Manager manager_;
    /// Classification scratch for process(); capacity reaches the
    /// window high-water once and is reused per request.
    core::ValidationRequest classify_scratch_;
    obs::TopK conflict_topk_;
    uint64_t cycle_aborts_ = 0; ///< forensics sampling counter
};

} // namespace rococo::fpga
