#include "fpga/manager.h"

namespace rococo::fpga {

Manager::Manager(size_t window)
    : validator_(window)
{
}

core::ValidationResult
Manager::decide(const core::ValidationRequest& request)
{
    const core::ValidationResult result =
        validator_.validate_and_commit(request);
    stats_.bump(core::to_string(result.verdict));
    return result;
}

} // namespace rococo::fpga
