#include "cc/snapshot_isolation.h"

namespace rococo::cc {

void
SnapshotIsolation::reset(const ReplayContext&)
{
}

bool
SnapshotIsolation::decide(const ReplayContext& context, size_t i)
{
    const Trace& trace = context.trace();
    const TraceTxn& txn = trace.txns[i];
    // First committer wins: only concurrent committed writers of the
    // same objects force an abort.
    for (size_t j = context.first_concurrent(i); j < i; ++j) {
        if (!context.committed(j)) continue;
        if (Trace::overlaps(txn.writes, trace.txns[j].writes)) return false;
    }
    return true;
}

} // namespace rococo::cc
