#include "cc/trace_generator.h"

#include <cmath>
#include <unordered_set>

#include "common/check.h"
#include "common/rng.h"

namespace rococo::cc {
namespace {

/// Draw @p count distinct slots from [0, locations) and split them into
/// reads and writes.
TraceTxn
make_txn(Xoshiro256& rng, uint64_t locations, unsigned count,
         double read_fraction)
{
    ROCOCO_CHECK(count <= locations);
    std::unordered_set<uint64_t> picked;
    TraceTxn txn;
    const auto reads = static_cast<unsigned>(
        std::lround(static_cast<double>(count) * read_fraction));
    while (picked.size() < count) {
        const uint64_t slot = rng.below(locations);
        if (!picked.insert(slot).second) continue;
        if (picked.size() <= reads) {
            txn.reads.push_back(slot);
        } else {
            txn.writes.push_back(slot);
        }
    }
    return txn;
}

/// Zipf sampler over [0, n) with exponent theta via inverse-CDF on a
/// precomputed table.
class ZipfSampler
{
  public:
    ZipfSampler(uint64_t n, double theta)
        : cdf_(n)
    {
        double sum = 0.0;
        for (uint64_t i = 0; i < n; ++i) {
            sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
            cdf_[i] = sum;
        }
        for (auto& c : cdf_) c /= sum;
    }

    uint64_t
    sample(Xoshiro256& rng) const
    {
        const double u = rng.uniform();
        // Binary search the CDF.
        size_t lo = 0, hi = cdf_.size() - 1;
        while (lo < hi) {
            const size_t mid = (lo + hi) / 2;
            if (cdf_[mid] < u) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        return lo;
    }

  private:
    std::vector<double> cdf_;
};

} // namespace

Trace
generate_uniform_trace(const UniformTraceParams& params)
{
    Xoshiro256 rng(params.seed);
    Trace trace;
    trace.num_locations = params.locations;
    trace.txns.reserve(params.txns);
    for (size_t i = 0; i < params.txns; ++i) {
        trace.txns.push_back(make_txn(rng, params.locations, params.accesses,
                                      params.read_fraction));
    }
    trace.normalize();
    return trace;
}

double
uniform_collision_rate(uint64_t locations, unsigned accesses)
{
    const double miss = 1.0 - static_cast<double>(accesses) /
                                  static_cast<double>(locations);
    return 1.0 - std::pow(miss, accesses);
}

Trace
generate_skewed_trace(const SkewedTraceParams& params)
{
    Xoshiro256 rng(params.seed);
    ZipfSampler zipf(params.locations, params.theta);
    Trace trace;
    trace.num_locations = params.locations;
    trace.txns.reserve(params.txns);
    for (size_t i = 0; i < params.txns; ++i) {
        std::unordered_set<uint64_t> picked;
        TraceTxn txn;
        const auto reads = static_cast<unsigned>(std::lround(
            static_cast<double>(params.accesses) * params.read_fraction));
        while (picked.size() < params.accesses) {
            const uint64_t slot = zipf.sample(rng);
            if (!picked.insert(slot).second) continue;
            if (picked.size() <= reads) {
                txn.reads.push_back(slot);
            } else {
                txn.writes.push_back(slot);
            }
        }
        trace.txns.push_back(std::move(txn));
    }
    trace.normalize();
    return trace;
}

Trace
generate_mixed_trace(const MixedTraceParams& params)
{
    Xoshiro256 rng(params.seed);
    Trace trace;
    trace.num_locations = params.locations;
    trace.txns.reserve(params.txns);
    for (size_t i = 0; i < params.txns; ++i) {
        const unsigned count = rng.chance(params.long_fraction)
                                   ? params.long_accesses
                                   : params.short_accesses;
        trace.txns.push_back(make_txn(rng, params.locations, count,
                                      params.read_fraction));
    }
    trace.normalize();
    return trace;
}

Trace
generate_eigenbench_trace(const EigenBenchParams& params)
{
    Xoshiro256 rng(params.seed);
    Trace trace;
    // Address spaces are disjoint: hot, then mild, then cold.
    const uint64_t mild_base = params.hot_locations;
    const uint64_t cold_base = mild_base + params.mild_locations;
    trace.num_locations = cold_base + params.cold_locations;
    trace.txns.reserve(params.txns);

    auto draw = [&](TraceTxn& txn, uint64_t base, uint64_t locations,
                    unsigned count, double read_fraction) {
        for (unsigned i = 0; i < count; ++i) {
            const uint64_t addr = base + rng.below(locations);
            if (rng.chance(read_fraction)) {
                txn.reads.push_back(addr);
            } else {
                txn.writes.push_back(addr);
            }
        }
    };

    for (size_t i = 0; i < params.txns; ++i) {
        TraceTxn txn;
        draw(txn, 0, params.hot_locations, params.hot_accesses,
             params.hot_read_fraction);
        draw(txn, mild_base, params.mild_locations, params.mild_accesses,
             params.mild_read_fraction);
        draw(txn, cold_base, params.cold_locations, params.cold_accesses,
             params.cold_read_fraction);
        trace.txns.push_back(std::move(txn));
    }
    trace.normalize();
    return trace;
}

} // namespace rococo::cc
