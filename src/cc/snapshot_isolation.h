/// @file
/// Snapshot isolation over traces.
///
/// First-committer-wins SI: a transaction aborts only on a write-write
/// conflict with a concurrent committed transaction. SI is the
/// compositional semantic of Fig. 3 (a); it admits the write-skew
/// anomaly of Fig. 1, so SI histories are NOT always serializable —
/// the property tests use this algorithm as a negative control for the
/// serializability oracle.
#pragma once

#include "cc/replay.h"

namespace rococo::cc {

class SnapshotIsolation final : public CcAlgorithm
{
  public:
    std::string name() const override { return "SI"; }
    void reset(const ReplayContext& context) override;
    bool decide(const ReplayContext& context, size_t i) override;
};

} // namespace rococo::cc
