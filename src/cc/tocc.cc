#include "cc/tocc.h"

namespace rococo::cc {

void
Tocc::reset(const ReplayContext&)
{
}

bool
Tocc::decide(const ReplayContext& context, size_t i)
{
    const Trace& trace = context.trace();
    const TraceTxn& txn = trace.txns[i];
    // Abort iff some committed concurrent transaction invalidated the
    // read set: the transaction read a version older than that commit,
    // which would require serializing before an earlier timestamp.
    for (size_t j = context.first_concurrent(i); j < i; ++j) {
        if (!context.committed(j)) continue;
        if (Trace::overlaps(txn.reads, trace.txns[j].writes)) return false;
    }
    return true;
}

} // namespace rococo::cc
