/// @file
/// Synthetic trace generators.
///
/// The primary generator reproduces the paper's EigenBench-like
/// micro-benchmark (§6.1): an array of `locations` memory slots; each
/// transaction accesses `accesses` distinct random slots, a fraction of
/// them reads and the rest writes. With N accesses out of L locations
/// the probability that two transactions collide on at least one slot
/// is approximately 1 - (1 - N/L)^N, the "collision rate" of Fig. 9.
///
/// Additional generators produce skewed (zipf-like) and read-mostly
/// traces for the ablation benches and property tests.
#pragma once

#include <cstddef>
#include <cstdint>

#include "cc/trace.h"

namespace rococo::cc {

/// Parameters of the uniform micro-benchmark generator.
struct UniformTraceParams
{
    uint64_t locations = 1024; ///< array size (paper: 1024)
    unsigned accesses = 8;     ///< distinct slots per transaction N
    double read_fraction = 0.5;
    size_t txns = 1000;
    uint64_t seed = 1;
};

/// Generate a uniform random-access trace (paper §6.1 micro-benchmark).
Trace generate_uniform_trace(const UniformTraceParams& params);

/// Analytic pairwise collision probability 1 - (1 - N/L)^N for the
/// uniform generator (the x-axis of Fig. 9).
double uniform_collision_rate(uint64_t locations, unsigned accesses);

/// Parameters of the skewed generator: slot popularity follows a
/// discrete zipf(theta) distribution, modelling hot-spot contention.
struct SkewedTraceParams
{
    uint64_t locations = 1024;
    unsigned accesses = 8;
    double read_fraction = 0.5;
    double theta = 0.8; ///< zipf skew; 0 = uniform
    size_t txns = 1000;
    uint64_t seed = 1;
};

/// Generate a zipf-skewed trace.
Trace generate_skewed_trace(const SkewedTraceParams& params);

/// A mixed trace interleaving long transactions among short ones, the
/// livelock-prone shape discussed in §5.1.
struct MixedTraceParams
{
    uint64_t locations = 1024;
    unsigned short_accesses = 4;
    unsigned long_accesses = 64;
    double long_fraction = 0.05;
    double read_fraction = 0.5;
    size_t txns = 1000;
    uint64_t seed = 1;
};

Trace generate_mixed_trace(const MixedTraceParams& params);

/// EigenBench-style generator (Hong et al., IISWC'10 — the tool the
/// paper's micro-benchmark imitates): three arrays with orthogonal
/// sharing characteristics — a small *hot* array every transaction
/// contends on, a *mild* array with medium sharing, and a large
/// *cold* array of effectively private accesses — with per-array
/// access counts and read fractions. This exposes the orthogonal TM
/// characteristics (contention, working set, tx length) as independent
/// knobs.
struct EigenBenchParams
{
    uint64_t hot_locations = 64;
    uint64_t mild_locations = 4096;
    uint64_t cold_locations = 1 << 20;
    unsigned hot_accesses = 2;
    unsigned mild_accesses = 6;
    unsigned cold_accesses = 8;
    double hot_read_fraction = 0.5;
    double mild_read_fraction = 0.75;
    double cold_read_fraction = 0.9;
    size_t txns = 1000;
    uint64_t seed = 1;
};

Trace generate_eigenbench_trace(const EigenBenchParams& params);

} // namespace rococo::cc
