/// @file
/// Trace-replay adapter driving the *signature-based* validation
/// engine (Detector + Manager, the exact FPGA data path) instead of
/// the precise-set validator. Bloom false positives make it
/// conservative: it may abort more than RococoCc but never decides a
/// real dependency away — with near-collision-free signatures its
/// decisions coincide with the exact validator (property-tested).
#pragma once

#include <memory>

#include "cc/replay.h"
#include "fpga/validation_engine.h"

namespace rococo::cc {

class EngineCc final : public CcAlgorithm
{
  public:
    explicit EngineCc(fpga::EngineConfig config = {});

    std::string name() const override { return "ROCoCo-sig"; }
    void reset(const ReplayContext& context) override;
    bool decide(const ReplayContext& context, size_t i) override;

    const fpga::ValidationEngine& engine() const { return *engine_; }

  private:
    fpga::EngineConfig config_;
    std::unique_ptr<fpga::ValidationEngine> engine_;
    std::vector<uint64_t> cid_prefix_;
};

} // namespace rococo::cc
