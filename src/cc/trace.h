/// @file
/// Memory-trace model for concurrency-control replay (§6.1).
///
/// A trace is an ordered sequence of transactions, each with the set of
/// locations it reads and writes. Replaying a trace with concurrency T
/// follows the paper's micro-benchmark semantics: the tentative updates
/// of the last T transactions, committed or not, are not visible to the
/// current one, i.e. transaction i observes exactly the writes of
/// committed transactions with index < i - T.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rococo::cc {

/// One transaction of a trace. Address vectors are kept sorted and
/// deduplicated (see Trace::normalize).
struct TraceTxn
{
    std::vector<uint64_t> reads;
    std::vector<uint64_t> writes;

    bool read_only() const { return writes.empty(); }
};

/// An ordered transaction trace over an address space.
struct Trace
{
    std::vector<TraceTxn> txns;
    uint64_t num_locations = 0;

    size_t size() const { return txns.size(); }

    /// Sort and deduplicate every transaction's address vectors.
    void normalize();

    /// Sorted-vector overlap test used throughout replay.
    static bool overlaps(const std::vector<uint64_t>& a,
                         const std::vector<uint64_t>& b);
};

} // namespace rococo::cc
