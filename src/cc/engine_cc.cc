#include "cc/engine_cc.h"

namespace rococo::cc {

EngineCc::EngineCc(fpga::EngineConfig config)
    : config_(config)
{
    // Replay counts every commit as a cid, so read-only transactions
    // must be validated strictly for the accounting to stay aligned.
    config_.strict_read_only = true;
}

void
EngineCc::reset(const ReplayContext& context)
{
    engine_ = std::make_unique<fpga::ValidationEngine>(config_);
    cid_prefix_.assign(context.trace().size() + 1, 0);
}

bool
EngineCc::decide(const ReplayContext& context, size_t i)
{
    const TraceTxn& txn = context.trace().txns[i];
    fpga::OffloadRequest request;
    request.reads = txn.reads;
    request.writes = txn.writes;
    request.snapshot_cid = cid_prefix_[context.first_concurrent(i)];
    const auto result = engine_->process(request);
    cid_prefix_[i + 1] = engine_->next_cid();
    return result.verdict == core::Verdict::kCommit;
}

} // namespace rococo::cc
