/// @file
/// Plain-text serialization for transaction traces, so captured or
/// generated workloads can be saved, exchanged and replayed
/// deterministically (e.g. to compare CC algorithms offline or to file
/// a reproducer for an abort-rate regression).
///
/// Format (line oriented, '#' comments allowed):
///   trace v1 <num_locations>
///   txn R <addr> <addr> ... W <addr> ...
///   ...
/// Addresses are decimal 64-bit; R/W sections may be empty.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "cc/trace.h"

namespace rococo::cc {

/// Write @p trace to @p out. Returns false on stream failure.
bool save_trace(std::ostream& out, const Trace& trace);

/// Parse a trace from @p in; nullopt on malformed input.
std::optional<Trace> load_trace(std::istream& in);

/// File-path conveniences.
bool save_trace_file(const std::string& path, const Trace& trace);
std::optional<Trace> load_trace_file(const std::string& path);

} // namespace rococo::cc
