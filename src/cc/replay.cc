#include "cc/replay.h"

#include <algorithm>
#include <map>

#include "common/check.h"
#include "obs/registry.h"
#include "obs/telemetry.h"

namespace rococo::cc {

ReplayContext::ReplayContext(const Trace& trace, int concurrency)
    : trace_(&trace), concurrency_(concurrency),
      committed_(trace.size(), 0), commit_prefix_(trace.size() + 1, 0)
{
    ROCOCO_CHECK(concurrency >= 1);
}

size_t
ReplayContext::first_concurrent(size_t i) const
{
    const size_t window = static_cast<size_t>(concurrency_);
    return i >= window ? i - window : 0;
}

uint64_t
ReplayContext::snapshot_cid(size_t i) const
{
    return commit_prefix_[first_concurrent(i)];
}

struct ReplayDriver
{
    static ReplayResult
    run(CcAlgorithm& algorithm, const Trace& trace, int concurrency)
    {
        ReplayContext context(trace, concurrency);
        algorithm.reset(context);

        ReplayResult result;
        result.committed.resize(trace.size(), 0);
        for (size_t i = 0; i < trace.size(); ++i) {
            const bool commit = algorithm.decide(context, i);
            context.committed_[i] = commit;
            context.commit_prefix_[i + 1] =
                context.commit_prefix_[i] + (commit ? 1 : 0);
            result.committed[i] = commit;
            if (commit) {
                ++result.commit_count;
            } else {
                ++result.abort_count;
                const obs::AbortReason reason = algorithm.last_abort_reason();
                ++result.aborts_by_reason[static_cast<size_t>(reason)];
                result.stats.bump(std::string("abort.") +
                                  obs::to_string(reason));
            }
        }
        if (obs::telemetry_active()) {
            // Mirror into the global registry with a "cc." prefix so a
            // TelemetrySession wrapping a replay-based bench exports the
            // same per-reason breakdown (sums to "cc.abort" by
            // construction, like the tm.* counters).
            auto& registry = obs::Registry::global();
            registry.counter("cc.commit").add(result.commit_count);
            registry.counter("cc.abort").add(result.abort_count);
            for (size_t r = 0; r < result.aborts_by_reason.size(); ++r) {
                const uint64_t n = result.aborts_by_reason[r];
                if (n == 0) continue;
                registry
                    .counter(std::string("cc.abort.") +
                             obs::to_string(static_cast<obs::AbortReason>(r)))
                    .add(n);
            }
        }
        return result;
    }
};

ReplayResult
replay(CcAlgorithm& algorithm, const Trace& trace, int concurrency)
{
    return ReplayDriver::run(algorithm, trace, concurrency);
}

graph::DependencyGraph
build_rw_graph(const Trace& trace, const std::vector<char>& committed,
               int concurrency)
{
    ROCOCO_CHECK(committed.size() == trace.size());
    graph::DependencyGraph g(trace.size());
    const size_t window = static_cast<size_t>(concurrency);

    // Committed writers per address in commit (index) order.
    std::map<uint64_t, std::vector<size_t>> writers;
    for (size_t i = 0; i < trace.size(); ++i) {
        if (!committed[i]) continue;
        for (uint64_t addr : trace.txns[i].writes) {
            writers[addr].push_back(i);
        }
    }

    // WAW: the version order chains committed writers of each address.
    for (const auto& [addr, list] : writers) {
        for (size_t v = 1; v < list.size(); ++v) {
            g.add_edge(list[v - 1], list[v]);
        }
    }

    // RAW / WAR: each committed reader observes the newest committed
    // writer outside its concurrent window and precedes every later
    // version's writer.
    for (size_t i = 0; i < trace.size(); ++i) {
        if (!committed[i]) continue;
        const size_t visible_end = i >= window ? i - window : 0;
        for (uint64_t addr : trace.txns[i].reads) {
            auto it = writers.find(addr);
            if (it == writers.end()) continue;
            const auto& list = it->second;
            // Last committed writer with index < visible_end.
            auto first_invisible = std::lower_bound(list.begin(), list.end(),
                                                    visible_end);
            if (first_invisible != list.begin()) {
                const size_t observed = *(first_invisible - 1);
                if (observed != i) g.add_edge(observed, i); // RAW
            }
            // The reader precedes every writer of a later version.
            for (auto later = first_invisible; later != list.end(); ++later) {
                if (*later != i) g.add_edge(i, *later); // WAR
            }
        }
    }
    return g;
}

graph::SerializabilityResult
check_history(const Trace& trace, const std::vector<char>& committed,
              int concurrency)
{
    return graph::check_serializability(
        build_rw_graph(trace, committed, concurrency));
}

graph::DependencyGraph
build_rw_graph_ordered(const Trace& trace,
                       const std::vector<char>& committed, int concurrency,
                       const std::vector<uint64_t>& commit_seq)
{
    ROCOCO_CHECK(committed.size() == trace.size());
    ROCOCO_CHECK(commit_seq.size() == trace.size());
    graph::DependencyGraph g(trace.size());
    const size_t window = static_cast<size_t>(concurrency);

    // Committed writers per address in WRITE-BACK (commit-seq) order.
    std::map<uint64_t, std::vector<size_t>> writers;
    for (size_t i = 0; i < trace.size(); ++i) {
        if (!committed[i]) continue;
        for (uint64_t addr : trace.txns[i].writes) {
            writers[addr].push_back(i);
        }
    }
    for (auto& [addr, list] : writers) {
        std::sort(list.begin(), list.end(), [&](size_t a, size_t b) {
            return commit_seq[a] < commit_seq[b];
        });
        // WAW: versions chain in write-back order.
        for (size_t v = 1; v < list.size(); ++v) {
            g.add_edge(list[v - 1], list[v]);
        }
    }

    for (size_t i = 0; i < trace.size(); ++i) {
        if (!committed[i]) continue;
        const size_t visible_end = i >= window ? i - window : 0;
        for (uint64_t addr : trace.txns[i].reads) {
            auto it = writers.find(addr);
            if (it == writers.end()) continue;
            const auto& list = it->second;
            // Observed version: among visible writers (arrival index <
            // visible_end), the one written back last.
            size_t observed = SIZE_MAX;
            for (size_t w : list) {
                if (w < visible_end &&
                    (observed == SIZE_MAX ||
                     commit_seq[w] > commit_seq[observed])) {
                    observed = w;
                }
            }
            if (observed != SIZE_MAX && observed != i) {
                g.add_edge(observed, i); // RAW
            }
            // The reader precedes every later version's writer.
            for (size_t w : list) {
                if (w == i || w == observed) continue;
                const bool later_version =
                    observed == SIZE_MAX ||
                    commit_seq[w] > commit_seq[observed];
                if (later_version) g.add_edge(i, w); // WAR
            }
        }
    }
    return g;
}

graph::SerializabilityResult
check_history_ordered(const Trace& trace,
                      const std::vector<char>& committed, int concurrency,
                      const std::vector<uint64_t>& commit_seq)
{
    return graph::check_serializability(build_rw_graph_ordered(
        trace, committed, concurrency, commit_seq));
}

} // namespace rococo::cc
