#include "cc/trace_io.h"

#include <fstream>
#include <sstream>

namespace rococo::cc {

bool
save_trace(std::ostream& out, const Trace& trace)
{
    out << "trace v1 " << trace.num_locations << "\n";
    for (const TraceTxn& txn : trace.txns) {
        out << "txn R";
        for (uint64_t addr : txn.reads) out << ' ' << addr;
        out << " W";
        for (uint64_t addr : txn.writes) out << ' ' << addr;
        out << "\n";
    }
    return static_cast<bool>(out);
}

std::optional<Trace>
load_trace(std::istream& in)
{
    Trace trace;
    std::string line;
    bool header_seen = false;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#') continue;
        std::istringstream fields(line);
        std::string tag;
        fields >> tag;
        if (!header_seen) {
            std::string version;
            if (tag != "trace" || !(fields >> version) ||
                version != "v1" || !(fields >> trace.num_locations)) {
                return std::nullopt;
            }
            header_seen = true;
            continue;
        }
        if (tag != "txn") return std::nullopt;
        std::string section;
        if (!(fields >> section) || section != "R") return std::nullopt;
        TraceTxn txn;
        std::string token;
        bool in_writes = false;
        while (fields >> token) {
            if (token == "W") {
                if (in_writes) return std::nullopt;
                in_writes = true;
                continue;
            }
            uint64_t addr = 0;
            try {
                size_t consumed = 0;
                addr = std::stoull(token, &consumed);
                if (consumed != token.size()) return std::nullopt;
            } catch (...) {
                return std::nullopt;
            }
            (in_writes ? txn.writes : txn.reads).push_back(addr);
        }
        if (!in_writes) return std::nullopt; // missing W section
        trace.txns.push_back(std::move(txn));
    }
    if (!header_seen) return std::nullopt;
    trace.normalize();
    return trace;
}

bool
save_trace_file(const std::string& path, const Trace& trace)
{
    std::ofstream out(path);
    return out && save_trace(out, trace);
}

std::optional<Trace>
load_trace_file(const std::string& path)
{
    std::ifstream in(path);
    if (!in) return std::nullopt;
    return load_trace(in);
}

} // namespace rococo::cc
