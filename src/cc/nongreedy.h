/// @file
/// Non-greedy ROCoCo (the paper's §4.1/§7 future-work direction).
///
/// Greedy ROCoCo commits any transaction that does not close a cycle
/// "without considering future transactions. There exists cases in
/// which committing a transaction may cause more future transactions
/// to abort." This module adds a batched validator with a global view
/// over a small decision window: it buffers B validation requests and
/// picks the commit subset and order that maximizes commits
/// (exhaustive search over ordered subsets — B is small, as a hardware
/// reorder window would be), sacrificing a transaction when that saves
/// several others.
#pragma once

#include <cstdint>
#include <vector>

#include "cc/replay.h"
#include "cc/trace.h"
#include "common/stats.h"
#include "core/rococo_validator.h"

namespace rococo::cc {

/// Result of a batched replay.
struct BatchReplayResult
{
    std::vector<char> committed;
    /// Commit sequence number (cid) per transaction; undefined for
    /// aborted ones. Needed by the serializability oracle because the
    /// batch may commit out of arrival order.
    std::vector<uint64_t> commit_seq;
    uint64_t commit_count = 0;
    uint64_t abort_count = 0;
    /// Transactions deliberately sacrificed although individually
    /// committable (the non-greedy choices).
    uint64_t sacrificed = 0;

    double
    abort_rate() const
    {
        const uint64_t total = commit_count + abort_count;
        return total ? static_cast<double>(abort_count) /
                           static_cast<double>(total)
                     : 0.0;
    }
};

/// Replay @p trace under the non-greedy batched ROCoCo validator.
///
/// Transactions are processed in batches of @p batch_size; within a
/// batch the validator rehearses every ordered subset on a copy of its
/// state and commits the subset with the most commits (ties: earliest
/// in arrival order). Snapshots follow the same concurrency-T
/// semantics as cc::replay. batch_size = 1 degenerates to greedy
/// ROCoCo.
///
/// Complexity per batch is sum_k C(B,k) k! (65 rehearsals at B = 4),
/// the price of the "global view" §4.1 alludes to.
BatchReplayResult batch_replay(const Trace& trace, int concurrency,
                               size_t batch_size, size_t window = 64);

} // namespace rococo::cc
