#include "cc/semantics.h"

#include <algorithm>
#include <set>

#include "cc/replay.h"
#include "common/check.h"
#include "graph/cycle.h"

namespace rococo::cc {

SiCheckResult
check_snapshot_isolation(const Trace& trace,
                         const std::vector<char>& committed,
                         int concurrency)
{
    ROCOCO_CHECK(committed.size() == trace.size());
    const size_t window = static_cast<size_t>(concurrency);
    SiCheckResult result;
    for (size_t i = 0; i < trace.size(); ++i) {
        if (!committed[i]) continue;
        const size_t first = i >= window ? i - window : 0;
        for (size_t j = first; j < i; ++j) {
            if (!committed[j]) continue;
            if (Trace::overlaps(trace.txns[i].writes,
                                trace.txns[j].writes)) {
                result.holds = false;
                result.txn_a = j;
                result.txn_b = i;
                return result;
            }
        }
    }
    return result;
}

graph::DependencyGraph
real_time_graph(const Trace& trace, const std::vector<char>& committed,
                int concurrency)
{
    const size_t window = static_cast<size_t>(concurrency);
    graph::DependencyGraph g(trace.size());
    for (size_t j = 0; j < trace.size(); ++j) {
        if (!committed[j]) continue;
        // i precedes j in real time iff their execution intervals do
        // not overlap. j's concurrent window is [j - T, j), so overlap
        // means j - i <= T and precedence means j - i > T. Materialized
        // exhaustively — the checker is an oracle, not a hot path.
        const size_t end = j > window ? j - window : 0;
        for (size_t i = 0; i < end; ++i) {
            if (committed[i]) g.add_edge(i, j);
        }
    }
    return g;
}

graph::DependencyGraph
per_object_rw_graph(const Trace& trace, const std::vector<char>& committed,
                    int concurrency, uint64_t address)
{
    // Project each transaction onto the single address and reuse the
    // multiversion graph construction.
    Trace projected;
    projected.num_locations = trace.num_locations;
    projected.txns.reserve(trace.size());
    for (const TraceTxn& txn : trace.txns) {
        TraceTxn p;
        if (std::binary_search(txn.reads.begin(), txn.reads.end(),
                               address)) {
            p.reads.push_back(address);
        }
        if (std::binary_search(txn.writes.begin(), txn.writes.end(),
                               address)) {
            p.writes.push_back(address);
        }
        projected.txns.push_back(std::move(p));
    }
    return build_rw_graph(projected, committed, concurrency);
}

bool
per_object_serializable(const Trace& trace,
                        const std::vector<char>& committed, int concurrency)
{
    std::set<uint64_t> addresses;
    for (size_t i = 0; i < trace.size(); ++i) {
        if (!committed[i]) continue;
        addresses.insert(trace.txns[i].reads.begin(),
                         trace.txns[i].reads.end());
        addresses.insert(trace.txns[i].writes.begin(),
                         trace.txns[i].writes.end());
    }
    for (uint64_t address : addresses) {
        if (graph::has_cycle(per_object_rw_graph(trace, committed,
                                                 concurrency, address))) {
            return false;
        }
    }
    return true;
}

graph::SerializabilityResult
check_strict_serializability(const Trace& trace,
                             const std::vector<char>& committed,
                             int concurrency)
{
    graph::DependencyGraph g =
        build_rw_graph(trace, committed, concurrency);
    const graph::DependencyGraph rt =
        real_time_graph(trace, committed, concurrency);
    for (const auto& [from, to] : rt.edges()) {
        g.add_edge(from, to);
    }
    return graph::check_serializability(g);
}

} // namespace rococo::cc
