/// @file
/// Timestamped OCC over traces (the OCC baseline of Fig. 9).
///
/// TOCC with commit-time timestamps (the LSA configuration of
/// TinySTM): a transaction is serialized at its commit timestamp and
/// must abort if any object it read was overwritten by a transaction
/// that committed after its snapshot — reordering "into the past" is
/// forbidden by the total timestamp order, which is exactly the phantom
/// ordering restriction ROCoCo removes (§3.1).
#pragma once

#include "cc/replay.h"

namespace rococo::cc {

class Tocc final : public CcAlgorithm
{
  public:
    std::string name() const override { return "TOCC"; }
    void reset(const ReplayContext& context) override;
    bool decide(const ReplayContext& context, size_t i) override;

    /// TOCC aborts are exactly the commit-order inversions the total
    /// timestamp order forbids (the phantom ordering ROCoCo removes).
    obs::AbortReason
    last_abort_reason() const override
    {
        return obs::AbortReason::kOrderInversion;
    }
};

} // namespace rococo::cc
