/// @file
/// History-level checkers for the axiom-based semantics of §3
/// (Fig. 3 (a)): snapshot isolation, serializability and strict
/// serializability over replayed histories.
///
/// In the replay model, transaction j's concurrent window is
/// [j - T, j): it overlaps i iff |i - j| <= T, and i precedes j in
/// real time iff j - i > T. Strict serializability therefore adds the
/// real-time edges {i -> j : j - i > T} to the ->rw graph; the
/// paper's §3.2 argument that real-time precedence forms an interval
/// order (and hence forces phantom orderings on any timestamp scheme)
/// is property-tested in tests/semantics_test.cc.
///
/// Note the lattice shape the checkers expose: SI and serializability
/// are *incomparable* strengthenings of atomicity+isolation — a
/// serializable ROCoCo history may violate SI's first-committer-wins
/// axiom (two concurrent blind writers both commit), while an SI
/// history may be non-serializable (write skew).
#pragma once

#include <vector>

#include "cc/trace.h"
#include "graph/serializability.h"

namespace rococo::cc {

/// Result of a snapshot-isolation check.
struct SiCheckResult
{
    bool holds = true;
    /// First violating pair (concurrent committed writers of one
    /// address) when !holds.
    size_t txn_a = 0;
    size_t txn_b = 0;
};

/// Does the committed history satisfy snapshot isolation's
/// first-committer-wins axiom (no two concurrent committed
/// transactions write the same address)? Read consistency is implied
/// by the replay model (every reader sees the committed-before-snapshot
/// state).
SiCheckResult check_snapshot_isolation(const Trace& trace,
                                       const std::vector<char>& committed,
                                       int concurrency);

/// Is the committed history strict serializable: does a witness serial
/// order exist that both respects ->rw and never reorders
/// non-overlapping transactions? Equivalent to acyclicity of
/// rw ∪ real-time.
graph::SerializabilityResult check_strict_serializability(
    const Trace& trace, const std::vector<char>& committed,
    int concurrency);

/// The real-time precedence relation of the replay model as a graph
/// over committed transactions (i -> j iff j - i > T). Exposed so
/// tests can verify it is an interval order (§3.2).
graph::DependencyGraph real_time_graph(const Trace& trace,
                                       const std::vector<char>& committed,
                                       int concurrency);

/// Per-object projection of a history: the ->rw graph restricted to
/// accesses of one address — the "each object enforces S" side of the
/// compositionality definition (§2.2).
graph::DependencyGraph per_object_rw_graph(
    const Trace& trace, const std::vector<char>& committed,
    int concurrency, uint64_t address);

/// Is every single-object projection serializable? Serializability is
/// NOT compositional (§2.2): this can hold while the whole history is
/// cyclic — Fig. 1 (b)'s write skew is the canonical witness
/// (tests/order_theory_test.cc).
bool per_object_serializable(const Trace& trace,
                             const std::vector<char>& committed,
                             int concurrency);

} // namespace rococo::cc
