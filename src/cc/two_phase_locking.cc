#include "cc/two_phase_locking.h"

namespace rococo::cc {

void
TwoPhaseLocking::reset(const ReplayContext&)
{
}

bool
TwoPhaseLocking::decide(const ReplayContext& context, size_t i)
{
    const Trace& trace = context.trace();
    const TraceTxn& txn = trace.txns[i];
    // Conflict with any concurrent transaction that kept its locks
    // (i.e. was not itself aborted) forces an abort: the later
    // transaction loses in no-wait 2PL.
    for (size_t j = context.first_concurrent(i); j < i; ++j) {
        if (!context.committed(j)) continue;
        const TraceTxn& other = trace.txns[j];
        const bool conflict = Trace::overlaps(txn.reads, other.writes) ||
                              Trace::overlaps(txn.writes, other.reads) ||
                              Trace::overlaps(txn.writes, other.writes);
        if (conflict) return false;
    }
    return true;
}

} // namespace rococo::cc
