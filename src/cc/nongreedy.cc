#include "cc/nongreedy.h"

#include <algorithm>

#include "common/check.h"

namespace rococo::cc {
namespace {

/// Rehearse validating the batch members in @p order on a copy of
/// @p validator; returns true iff every member commits.
bool
rehearse(core::ExactRococoValidator validator, // by value: a copy
         const Trace& trace, const std::vector<size_t>& order,
         const std::vector<uint64_t>& snapshots, size_t batch_start)
{
    for (size_t index : order) {
        const TraceTxn& txn = trace.txns[index];
        const auto result = validator.validate(
            txn.reads, txn.writes, snapshots[index - batch_start]);
        if (result.verdict != core::Verdict::kCommit) return false;
    }
    return true;
}

} // namespace

BatchReplayResult
batch_replay(const Trace& trace, int concurrency, size_t batch_size,
             size_t window)
{
    ROCOCO_CHECK(concurrency >= 1);
    ROCOCO_CHECK(batch_size >= 1 && batch_size <= 6);

    core::ExactRococoValidator validator(window,
                                         /*strict_read_only=*/true);
    BatchReplayResult result;
    result.committed.assign(trace.size(), 0);
    result.commit_seq.assign(trace.size(), 0);
    // commit_prefix[i] = commits among transactions [0, i).
    std::vector<uint64_t> commit_prefix(trace.size() + 1, 0);

    const size_t t_window = static_cast<size_t>(concurrency);

    for (size_t batch_start = 0; batch_start < trace.size();
         batch_start += batch_size) {
        const size_t batch_end =
            std::min(batch_start + batch_size, trace.size());
        const size_t count = batch_end - batch_start;

        // Snapshots: commits visible to each member. Decisions inside
        // the batch are simultaneous, so visibility is clamped to the
        // batch boundary.
        std::vector<uint64_t> snapshots(count);
        for (size_t i = batch_start; i < batch_end; ++i) {
            const size_t first_concurrent =
                i >= t_window ? i - t_window : 0;
            const size_t visible = std::min(first_concurrent, batch_start);
            snapshots[i - batch_start] = commit_prefix[visible];
        }

        // Exhaustive ordered-subset search for the max-commit schedule.
        std::vector<size_t> best_order;
        for (unsigned mask = 1; mask < (1u << count); ++mask) {
            std::vector<size_t> members;
            for (size_t j = 0; j < count; ++j) {
                if (mask & (1u << j)) members.push_back(batch_start + j);
            }
            if (members.size() <= best_order.size()) continue;
            std::sort(members.begin(), members.end());
            do {
                if (rehearse(validator, trace, members, snapshots,
                             batch_start)) {
                    best_order = members;
                    break;
                }
            } while (std::next_permutation(members.begin(), members.end()));
        }

        // Apply the chosen schedule for real.
        for (size_t index : best_order) {
            const TraceTxn& txn = trace.txns[index];
            const auto verdict = validator.validate(
                txn.reads, txn.writes, snapshots[index - batch_start]);
            ROCOCO_CHECK(verdict.verdict == core::Verdict::kCommit);
            result.committed[index] = 1;
            result.commit_seq[index] = verdict.cid;
        }
        result.commit_count += best_order.size();
        result.abort_count += count - best_order.size();

        // Count deliberate sacrifices: members outside the schedule
        // that would have committed individually at this point.
        for (size_t i = batch_start; i < batch_end; ++i) {
            if (result.committed[i]) continue;
            if (rehearse(validator, trace, {i}, snapshots, batch_start)) {
                ++result.sacrificed;
            }
        }

        for (size_t i = batch_start; i < batch_end; ++i) {
            commit_prefix[i + 1] =
                commit_prefix[i] + (result.committed[i] ? 1 : 0);
        }
    }
    return result;
}

} // namespace rococo::cc
