#include "cc/trace.h"

#include <algorithm>

namespace rococo::cc {

void
Trace::normalize()
{
    for (auto& txn : txns) {
        std::sort(txn.reads.begin(), txn.reads.end());
        txn.reads.erase(std::unique(txn.reads.begin(), txn.reads.end()),
                        txn.reads.end());
        std::sort(txn.writes.begin(), txn.writes.end());
        txn.writes.erase(std::unique(txn.writes.begin(), txn.writes.end()),
                         txn.writes.end());
    }
}

bool
Trace::overlaps(const std::vector<uint64_t>& a, const std::vector<uint64_t>& b)
{
    size_t i = 0, j = 0;
    while (i < a.size() && j < b.size()) {
        if (a[i] < b[j]) {
            ++i;
        } else if (a[i] > b[j]) {
            ++j;
        } else {
            return true;
        }
    }
    return false;
}

} // namespace rococo::cc
