/// @file
/// No-wait two-phase locking over traces (the PCC baseline of Fig. 9).
///
/// Under 2PL an object locked during a transaction's execution phase
/// cannot be accessed by a concurrent transaction until the commit
/// phase releases it (§2.2). In the trace model a transaction therefore
/// aborts iff its footprint conflicts (R-W, W-R or W-W) with any
/// concurrent transaction that holds its locks to commit; we use the
/// no-wait variant (conflict => abort) which is deadlock-free and the
/// standard spelling for HTM-like eager systems.
#pragma once

#include "cc/replay.h"

namespace rococo::cc {

class TwoPhaseLocking final : public CcAlgorithm
{
  public:
    std::string name() const override { return "2PL"; }
    void reset(const ReplayContext& context) override;
    bool decide(const ReplayContext& context, size_t i) override;

    /// Every 2PL abort is a failed lock acquisition.
    obs::AbortReason
    last_abort_reason() const override
    {
        return obs::AbortReason::kLockedConflict;
    }
};

} // namespace rococo::cc
