/// @file
/// ROCoCo over traces: the reachability-based validator driven by the
/// trace replay, completing the Fig. 9 trio (2PL / TOCC / ROCoCo).
#pragma once

#include <memory>

#include "cc/replay.h"
#include "core/rococo_validator.h"

namespace rococo::cc {

class RococoCc final : public CcAlgorithm
{
  public:
    /// @param window sliding-window size W (paper: 64)
    /// @param strict_read_only validate read-only transactions through
    ///     the full cycle check (see core/rococo_validator.h)
    explicit RococoCc(size_t window = 64, bool strict_read_only = true);

    std::string name() const override { return "ROCoCo"; }
    void reset(const ReplayContext& context) override;
    bool decide(const ReplayContext& context, size_t i) override;

    /// Typed cause of the last abort verdict (validation-cycle vs
    /// window-eviction), straight from the validator result.
    obs::AbortReason last_abort_reason() const override
    {
        return last_abort_;
    }

    /// Cumulative verdict counters (abort-cycle vs window-overflow)
    /// since the last reset.
    const CounterBag& verdicts() const { return verdicts_; }

  private:
    size_t window_;
    bool strict_read_only_;
    std::unique_ptr<core::ExactRococoValidator> validator_;
    CounterBag verdicts_;
    std::vector<uint64_t> cid_prefix_;
    obs::AbortReason last_abort_ = obs::AbortReason::kUnknown;
};

} // namespace rococo::cc
