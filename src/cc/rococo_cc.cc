#include "cc/rococo_cc.h"

#include "common/check.h"

namespace rococo::cc {

RococoCc::RococoCc(size_t window, bool strict_read_only)
    : window_(window), strict_read_only_(strict_read_only)
{
}

void
RococoCc::reset(const ReplayContext& context)
{
    validator_ = std::make_unique<core::ExactRococoValidator>(
        window_, strict_read_only_);
    verdicts_ = CounterBag();
    // cid_prefix_[i] = validator cids consumed by transactions [0, i).
    // In non-strict mode read-only commits do not consume cids, so this
    // can lag the replay's own commit count; snapshots must be expressed
    // in the validator's cid space.
    cid_prefix_.assign(context.trace().size() + 1, 0);
}

bool
RococoCc::decide(const ReplayContext& context, size_t i)
{
    const TraceTxn& txn = context.trace().txns[i];
    const uint64_t snapshot = cid_prefix_[context.first_concurrent(i)];
    ROCOCO_DCHECK(validator_->next_cid() == cid_prefix_[i]);

    const core::ValidationResult result = validator_->validate(
        txn.reads, txn.writes, snapshot);
    verdicts_.bump(core::to_string(result.verdict));
    cid_prefix_[i + 1] = validator_->next_cid();
    if (result.verdict != core::Verdict::kCommit) {
        last_abort_ = result.reason == obs::AbortReason::kNone
                          ? obs::AbortReason::kUnknown
                          : result.reason;
    }
    return result.verdict == core::Verdict::kCommit;
}

} // namespace rococo::cc
