/// @file
/// Trace replay driver for concurrency-control algorithms and the
/// serializability oracle the committed histories are checked against.
///
/// Replay processes transactions in trace order. Transaction i is
/// concurrent with the T-1 transactions preceding it; its snapshot
/// contains exactly the committed transactions with index < i - T
/// (§6.1). Each algorithm decides commit/abort per transaction; the
/// driver records decisions and statistics.
#pragma once

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "cc/trace.h"
#include "common/stats.h"
#include "graph/dependency_graph.h"
#include "graph/serializability.h"
#include "obs/abort_reason.h"

namespace rococo::cc {

/// Read-only view the algorithms get of the replay-in-progress.
class ReplayContext
{
  public:
    ReplayContext(const Trace& trace, int concurrency);

    const Trace& trace() const { return *trace_; }
    int concurrency() const { return concurrency_; }

    /// Decisions for transactions processed so far.
    bool committed(size_t i) const { return committed_[i]; }

    /// First index of the concurrent window of transaction @p i
    /// (transactions [first_concurrent(i), i) are concurrent with i).
    size_t first_concurrent(size_t i) const;

    /// Number of commits visible to transaction @p i, i.e. commits among
    /// transactions with index < first_concurrent(i). Doubles as the
    /// snapshot cid for cid-counting validators.
    uint64_t snapshot_cid(size_t i) const;

    /// Total commits among transactions [0, i).
    uint64_t commits_before(size_t i) const { return commit_prefix_[i]; }

  private:
    friend struct ReplayDriver;
    const Trace* trace_;
    int concurrency_;
    std::vector<char> committed_;
    std::vector<uint64_t> commit_prefix_; ///< commit_prefix_[i] = commits in [0,i)
};

/// A concurrency-control algorithm replayable over traces.
class CcAlgorithm
{
  public:
    virtual ~CcAlgorithm() = default;

    virtual std::string name() const = 0;

    /// Called once before a replay; reset internal state.
    virtual void reset(const ReplayContext& context) = 0;

    /// Decide commit (true) or abort (false) for transaction @p i. The
    /// context exposes all decisions for j < i.
    virtual bool decide(const ReplayContext& context, size_t i) = 0;

    /// Why the most recent decide() returned false. Algorithms that can
    /// attribute their aborts override this; the replay driver reads it
    /// after every abort to fill ReplayResult::aborts_by_reason.
    virtual obs::AbortReason
    last_abort_reason() const
    {
        return obs::AbortReason::kUnknown;
    }
};

/// Result of replaying one trace.
struct ReplayResult
{
    std::vector<char> committed;
    uint64_t commit_count = 0;
    uint64_t abort_count = 0;
    CounterBag stats;
    /// Aborts attributed by cause (indexed by obs::AbortReason); the
    /// entries sum to abort_count.
    std::array<uint64_t, obs::kAbortReasonCount> aborts_by_reason{};

    double
    abort_rate() const
    {
        const uint64_t total = commit_count + abort_count;
        return total ? static_cast<double>(abort_count) /
                           static_cast<double>(total)
                     : 0.0;
    }
};

/// Replay @p trace with @p algorithm at the given concurrency level.
ReplayResult replay(CcAlgorithm& algorithm, const Trace& trace,
                    int concurrency);

/// Build the multiversion ->rw dependency graph of a committed history:
/// the version order of each address is the commit (index) order of its
/// committed writers; readers observe the last committed writer visible
/// in their snapshot. Vertices are trace indices; edges only involve
/// committed transactions.
graph::DependencyGraph build_rw_graph(const Trace& trace,
                                      const std::vector<char>& committed,
                                      int concurrency);

/// Oracle: is the committed history serializable (acyclic ->rw)?
graph::SerializabilityResult check_history(const Trace& trace,
                                           const std::vector<char>& committed,
                                           int concurrency);

/// Variant for validators that may commit out of arrival order (the
/// non-greedy batch validator): the version order of each address is
/// the WRITE-BACK order given by @p commit_seq (commit_seq[i] is the
/// commit sequence number of transaction i, ignored for aborted
/// transactions). Readers observe the newest visible version by
/// commit order.
graph::DependencyGraph build_rw_graph_ordered(
    const Trace& trace, const std::vector<char>& committed,
    int concurrency, const std::vector<uint64_t>& commit_seq);

graph::SerializabilityResult check_history_ordered(
    const Trace& trace, const std::vector<char>& committed,
    int concurrency, const std::vector<uint64_t>& commit_seq);

} // namespace rococo::cc
