/// @file
/// Trace capture: run a workload once, single-threaded, and record
/// every transaction's read/write address sets. The discrete-event
/// simulator (src/sim) replays these traces on modelled threads under
/// each TM backend — the methodology of the paper's §6.1, extended to
/// the STAMP suite because this reproduction runs on one physical core
/// (see DESIGN.md).
#pragma once

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "tm/tm.h"

namespace rococo::stamp {

/// One captured transaction.
struct SimTxn
{
    std::vector<uint64_t> reads;  ///< sorted, deduplicated cell keys
    std::vector<uint64_t> writes; ///< sorted, deduplicated cell keys
    /// Access count before dedup — a proxy for the computation the
    /// transaction performs (the cost model charges per operation).
    uint64_t ops = 0;
    bool read_only() const { return writes.empty(); }
};

/// A captured run.
struct SimTrace
{
    std::vector<SimTxn> txns;

    uint64_t total_ops() const;
    double mean_read_set() const;
    double mean_write_set() const;
    double read_only_fraction() const;
};

/// A recording TmRuntime: executes bodies directly (sequentially) and
/// captures their access sets. Single-threaded use only.
class TraceCaptureTm final : public tm::TmRuntime
{
  public:
    std::string name() const override { return "TraceCapture"; }

    void thread_init(unsigned) override {}
    void thread_fini() override {}

    CounterBag
    stats() const override
    {
        CounterBag bag;
        bag.bump("commits", trace_.txns.size());
        return bag;
    }

    /// Move the captured trace out.
    SimTrace take_trace() { return std::move(trace_); }

    const SimTrace& trace() const { return trace_; }

  protected:
    bool try_execute(const std::function<void(tm::Tx&)>& body) override;

  private:
    class RecordingTx;

    SimTrace trace_;
};

} // namespace rococo::stamp
