#include "stamp/containers/tx_list.h"

namespace rococo::stamp {

std::pair<uint64_t, uint64_t>
TxList::locate(tm::Tx& tx, uint64_t key) const
{
    uint64_t prev = kHead;
    uint64_t curr = next_of(tx, prev);
    while (curr != kNullNode) {
        const uint64_t curr_key = tx.load(pool_->field(curr, kKey));
        if (curr_key >= key) break;
        prev = curr;
        curr = next_of(tx, curr);
    }
    return {prev, curr};
}

bool
TxList::insert(tm::Tx& tx, uint64_t key, uint64_t value)
{
    auto [prev, curr] = locate(tx, key);
    if (curr != kNullNode && tx.load(pool_->field(curr, kKey)) == key) {
        return false;
    }
    const uint64_t node = pool_->alloc();
    tx.store(pool_->field(node, kKey), key);
    tx.store(pool_->field(node, kValue), value);
    tx.store(pool_->field(node, kNext), curr);
    set_next(tx, prev, node);
    return true;
}

bool
TxList::remove(tm::Tx& tx, uint64_t key)
{
    auto [prev, curr] = locate(tx, key);
    if (curr == kNullNode || tx.load(pool_->field(curr, kKey)) != key) {
        return false;
    }
    set_next(tx, prev, next_of(tx, curr));
    return true;
}

std::optional<uint64_t>
TxList::find(tm::Tx& tx, uint64_t key) const
{
    auto [prev, curr] = locate(tx, key);
    (void)prev;
    if (curr == kNullNode || tx.load(pool_->field(curr, kKey)) != key) {
        return std::nullopt;
    }
    return tx.load(pool_->field(curr, kValue));
}

bool
TxList::update(tm::Tx& tx, uint64_t key, uint64_t value)
{
    auto [prev, curr] = locate(tx, key);
    (void)prev;
    if (curr == kNullNode || tx.load(pool_->field(curr, kKey)) != key) {
        return false;
    }
    tx.store(pool_->field(curr, kValue), value);
    return true;
}

uint64_t
TxList::size(tm::Tx& tx) const
{
    uint64_t count = 0;
    for (uint64_t node = next_of(tx, kHead); node != kNullNode;
         node = next_of(tx, node)) {
        ++count;
    }
    return count;
}

void
TxList::unsafe_for_each(
    const std::function<void(uint64_t, uint64_t)>& fn) const
{
    for (uint64_t node = head_.unsafe_load(); node != kNullNode;
         node = pool_->field(node, kNext).unsafe_load()) {
        fn(pool_->field(node, kKey).unsafe_load(),
           pool_->field(node, kValue).unsafe_load());
    }
}

} // namespace rococo::stamp
