#include "stamp/containers/tx_queue.h"

namespace rococo::stamp {

TxQueue::TxQueue(size_t capacity)
    : slots_(capacity)
{
}

bool
TxQueue::push(tm::Tx& tx, uint64_t value)
{
    const uint64_t head = tx.load(head_);
    const uint64_t tail = tx.load(tail_);
    if (tail - head >= slots_.size()) return false;
    tx.store(slots_[tail % slots_.size()], value);
    tx.store(tail_, tail + 1);
    return true;
}

std::optional<uint64_t>
TxQueue::pop(tm::Tx& tx)
{
    const uint64_t head = tx.load(head_);
    const uint64_t tail = tx.load(tail_);
    if (head == tail) return std::nullopt;
    const uint64_t value = tx.load(slots_[head % slots_.size()]);
    tx.store(head_, head + 1);
    return value;
}

uint64_t
TxQueue::size(tm::Tx& tx) const
{
    return tx.load(tail_) - tx.load(head_);
}

bool
TxQueue::unsafe_push(uint64_t value)
{
    const uint64_t head = head_.unsafe_load();
    const uint64_t tail = tail_.unsafe_load();
    if (tail - head >= slots_.size()) return false;
    slots_[tail % slots_.size()].unsafe_store(value);
    tail_.unsafe_store(tail + 1);
    return true;
}

uint64_t
TxQueue::unsafe_size() const
{
    return tail_.unsafe_load() - head_.unsafe_load();
}

} // namespace rococo::stamp
