#include "stamp/containers/tx_map.h"

#include <vector>

namespace rococo::stamp {

TxMap::TxMap(size_t capacity)
    : pool_(capacity)
{
}

TxMap::Locate
TxMap::locate(tm::Tx& tx, uint64_t key) const
{
    uint64_t parent = kRootParent;
    bool is_left = false;
    uint64_t node = tx.load(root_);
    while (node != kNullNode) {
        const uint64_t node_key = tx.load(pool_.field(node, kKey));
        if (node_key == key) break;
        parent = node;
        is_left = key < node_key;
        node = child(tx, node, is_left ? kLeft : kRight);
    }
    return {parent, node, is_left};
}

void
TxMap::replace_child(tm::Tx& tx, uint64_t parent, bool is_left,
                     uint64_t new_child) const
{
    if (parent == kRootParent) {
        tx.store(root_, new_child);
    } else {
        tx.store(pool_.field(parent, is_left ? kLeft : kRight), new_child);
    }
}

bool
TxMap::insert(tm::Tx& tx, uint64_t key, uint64_t value)
{
    const Locate at = locate(tx, key);
    if (at.node != kNullNode) return false;
    const uint64_t node = pool_.alloc();
    tx.store(pool_.field(node, kKey), key);
    tx.store(pool_.field(node, kValue), value);
    tx.store(pool_.field(node, kLeft), kNullNode);
    tx.store(pool_.field(node, kRight), kNullNode);
    replace_child(tx, at.parent, at.is_left, node);
    return true;
}

bool
TxMap::remove(tm::Tx& tx, uint64_t key)
{
    const Locate at = locate(tx, key);
    if (at.node == kNullNode) return false;
    const uint64_t left = child(tx, at.node, kLeft);
    const uint64_t right = child(tx, at.node, kRight);

    if (left == kNullNode || right == kNullNode) {
        // Zero or one child: splice.
        replace_child(tx, at.parent, at.is_left,
                      left != kNullNode ? left : right);
        return true;
    }

    // Two children: find the in-order successor (leftmost of the right
    // subtree), splice it out and move its payload into our node.
    uint64_t succ_parent = at.node;
    bool succ_is_left = false;
    uint64_t succ = right;
    for (uint64_t next = child(tx, succ, kLeft); next != kNullNode;
         next = child(tx, succ, kLeft)) {
        succ_parent = succ;
        succ_is_left = true;
        succ = next;
    }
    replace_child(tx, succ_parent, succ_is_left, child(tx, succ, kRight));
    tx.store(pool_.field(at.node, kKey), tx.load(pool_.field(succ, kKey)));
    tx.store(pool_.field(at.node, kValue),
             tx.load(pool_.field(succ, kValue)));
    return true;
}

std::optional<uint64_t>
TxMap::find(tm::Tx& tx, uint64_t key) const
{
    const Locate at = locate(tx, key);
    if (at.node == kNullNode) return std::nullopt;
    return tx.load(pool_.field(at.node, kValue));
}

bool
TxMap::update(tm::Tx& tx, uint64_t key, uint64_t value)
{
    const Locate at = locate(tx, key);
    if (at.node == kNullNode) return false;
    tx.store(pool_.field(at.node, kValue), value);
    return true;
}

void
TxMap::put(tm::Tx& tx, uint64_t key, uint64_t value)
{
    if (!update(tx, key, value)) insert(tx, key, value);
}

std::optional<std::pair<uint64_t, uint64_t>>
TxMap::lower_bound(tm::Tx& tx, uint64_t key) const
{
    uint64_t best = kNullNode;
    uint64_t node = tx.load(root_);
    while (node != kNullNode) {
        const uint64_t node_key = tx.load(pool_.field(node, kKey));
        if (node_key == key) {
            best = node;
            break;
        }
        if (node_key > key) {
            best = node;
            node = child(tx, node, kLeft);
        } else {
            node = child(tx, node, kRight);
        }
    }
    if (best == kNullNode) return std::nullopt;
    return std::make_pair(tx.load(pool_.field(best, kKey)),
                          tx.load(pool_.field(best, kValue)));
}

void
TxMap::unsafe_for_each(
    const std::function<void(uint64_t, uint64_t)>& fn) const
{
    // Iterative in-order traversal on raw cell values.
    std::vector<uint64_t> stack;
    uint64_t node = root_.unsafe_load();
    while (node != kNullNode || !stack.empty()) {
        while (node != kNullNode) {
            stack.push_back(node);
            node = pool_.field(node, kLeft).unsafe_load();
        }
        node = stack.back();
        stack.pop_back();
        fn(pool_.field(node, kKey).unsafe_load(),
           pool_.field(node, kValue).unsafe_load());
        node = pool_.field(node, kRight).unsafe_load();
    }
}

uint64_t
TxMap::unsafe_size() const
{
    uint64_t count = 0;
    unsafe_for_each([&](uint64_t, uint64_t) { ++count; });
    return count;
}

} // namespace rococo::stamp
