#include "stamp/containers/tx_bitmap.h"

#include <bit>

#include "common/check.h"

namespace rococo::stamp {

TxBitmap::TxBitmap(size_t bits)
    : bits_(bits), words_((bits + 63) / 64)
{
}

bool
TxBitmap::test(tm::Tx& tx, uint64_t bit) const
{
    ROCOCO_DCHECK(bit < bits_);
    return (tx.load(words_[bit >> 6]) >> (bit & 63)) & 1;
}

bool
TxBitmap::set(tm::Tx& tx, uint64_t bit)
{
    ROCOCO_DCHECK(bit < bits_);
    const uint64_t word = tx.load(words_[bit >> 6]);
    const uint64_t mask = uint64_t{1} << (bit & 63);
    if (word & mask) return false;
    tx.store(words_[bit >> 6], word | mask);
    return true;
}

void
TxBitmap::clear(tm::Tx& tx, uint64_t bit)
{
    ROCOCO_DCHECK(bit < bits_);
    const uint64_t word = tx.load(words_[bit >> 6]);
    tx.store(words_[bit >> 6], word & ~(uint64_t{1} << (bit & 63)));
}

uint64_t
TxBitmap::unsafe_count() const
{
    uint64_t count = 0;
    for (const auto& cell : words_) {
        count += std::popcount(cell.unsafe_load());
    }
    return count;
}

} // namespace rococo::stamp
