#include "stamp/containers/tx_hashtable.h"

#include <bit>

namespace rococo::stamp {

TxHashTable::TxHashTable(size_t buckets, size_t capacity)
    : pool_(std::make_unique<TxList::Pool>(capacity))
{
    const size_t rounded = std::bit_ceil(buckets);
    mask_ = rounded - 1;
    for (size_t b = 0; b < rounded; ++b) buckets_.emplace_back(*pool_);
}

bool
TxHashTable::insert(tm::Tx& tx, uint64_t key, uint64_t value)
{
    return bucket_for(key).insert(tx, key, value);
}

bool
TxHashTable::remove(tm::Tx& tx, uint64_t key)
{
    return bucket_for(key).remove(tx, key);
}

std::optional<uint64_t>
TxHashTable::find(tm::Tx& tx, uint64_t key) const
{
    return bucket_for(key).find(tx, key);
}

bool
TxHashTable::contains(tm::Tx& tx, uint64_t key) const
{
    return bucket_for(key).contains(tx, key);
}

bool
TxHashTable::update(tm::Tx& tx, uint64_t key, uint64_t value)
{
    return bucket_for(key).update(tx, key, value);
}

void
TxHashTable::unsafe_for_each(
    const std::function<void(uint64_t, uint64_t)>& fn) const
{
    for (const TxList& bucket : buckets_) bucket.unsafe_for_each(fn);
}

uint64_t
TxHashTable::unsafe_size() const
{
    uint64_t count = 0;
    unsafe_for_each([&](uint64_t, uint64_t) { ++count; });
    return count;
}

} // namespace rococo::stamp
