/// @file
/// Transactional sorted singly-linked list map (STAMP lib/list
/// analogue). Keys are unique; each node carries one value word.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "stamp/containers/node_pool.h"

namespace rococo::stamp {

/// A sorted list rooted at an owned head cell, drawing nodes from a
/// shared pool. Multiple lists (e.g. hash buckets) can share one pool.
class TxList
{
  public:
    /// Node layout in the pool.
    enum Field : unsigned { kKey = 0, kValue = 1, kNext = 2 };
    static constexpr unsigned kFields = 3;
    using Pool = NodePool<kFields>;

    explicit TxList(Pool& pool)
        : pool_(&pool)
    {
    }

    /// Insert (key, value); returns false if the key already exists.
    bool insert(tm::Tx& tx, uint64_t key, uint64_t value);

    /// Remove key; returns false if absent. The node is unlinked, not
    /// reclaimed.
    bool remove(tm::Tx& tx, uint64_t key);

    /// Value for key, or nullopt.
    std::optional<uint64_t> find(tm::Tx& tx, uint64_t key) const;

    bool contains(tm::Tx& tx, uint64_t key) const
    {
        return find(tx, key).has_value();
    }

    /// Update the value of an existing key; returns false if absent.
    bool update(tm::Tx& tx, uint64_t key, uint64_t value);

    /// Transactional length (walks the list).
    uint64_t size(tm::Tx& tx) const;

    /// Non-transactional traversal for post-run verification.
    void unsafe_for_each(
        const std::function<void(uint64_t key, uint64_t value)>& fn) const;

  private:
    /// Find predecessor of the first node with node.key >= key.
    /// Returns (prev, curr) node indices; curr may be kNullNode.
    std::pair<uint64_t, uint64_t> locate(tm::Tx& tx, uint64_t key) const;

    uint64_t
    next_of(tm::Tx& tx, uint64_t node) const
    {
        return node == kHead ? tx.load(head_)
                             : tx.load(pool_->field(node, kNext));
    }

    void
    set_next(tm::Tx& tx, uint64_t node, uint64_t next) const
    {
        if (node == kHead) {
            tx.store(head_, next);
        } else {
            tx.store(pool_->field(node, kNext), next);
        }
    }

    /// Sentinel pseudo-index for the head link.
    static constexpr uint64_t kHead = ~uint64_t{0};

    Pool* pool_;
    mutable tm::TmCell head_;
};

} // namespace rococo::stamp
