/// @file
/// Transactional bitmap (STAMP lib/bitmap analogue), bit-per-entry over
/// word cells. Conflicts are word-granular, as in the original.
#pragma once

#include <cstdint>
#include <vector>

#include "tm/tm.h"

namespace rococo::stamp {

class TxBitmap
{
  public:
    explicit TxBitmap(size_t bits);

    size_t size() const { return bits_; }

    bool test(tm::Tx& tx, uint64_t bit) const;

    /// Set @p bit; returns false if it was already set.
    bool set(tm::Tx& tx, uint64_t bit);

    void clear(tm::Tx& tx, uint64_t bit);

    /// Non-transactional popcount for verification.
    uint64_t unsafe_count() const;

  private:
    size_t bits_;
    mutable std::vector<tm::TmCell> words_;
};

} // namespace rococo::stamp
