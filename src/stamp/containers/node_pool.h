/// @file
/// Fixed-capacity node pool backing the transactional containers.
///
/// Allocation is a non-transactional atomic bump: a node index handed
/// out inside a transaction that later aborts is simply leaked (the
/// commit-deferred allocation strategy documented in DESIGN.md — the
/// same simplification STAMP's tm_malloc pools make in practice).
/// Nodes are never physically reclaimed; removed nodes are unlinked
/// only, so pools must be sized for the total allocation volume of a
/// run. Index 0 is the null sentinel.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "tm/tm.h"

namespace rococo::stamp {

/// Null link value used by all containers.
inline constexpr uint64_t kNullNode = 0;

/// Pool of nodes with @p Fields transactional word fields each.
template <unsigned Fields>
class NodePool
{
  public:
    explicit NodePool(size_t capacity)
        : cells_(capacity * Fields)
    {
        ROCOCO_CHECK(capacity >= 2);
    }

    size_t capacity() const { return cells_.size() / Fields; }

    /// Allocate a fresh node index (never 0). Aborted transactions leak
    /// their allocations.
    uint64_t
    alloc()
    {
        const uint64_t index =
            next_.fetch_add(1, std::memory_order_relaxed);
        ROCOCO_CHECK(index < capacity());
        return index;
    }

    /// Field @p f of node @p index.
    tm::TmCell&
    field(uint64_t index, unsigned f)
    {
        ROCOCO_DCHECK(index != kNullNode && index < capacity());
        ROCOCO_DCHECK(f < Fields);
        return cells_[index * Fields + f];
    }

    const tm::TmCell&
    field(uint64_t index, unsigned f) const
    {
        ROCOCO_DCHECK(index != kNullNode && index < capacity());
        return cells_[index * Fields + f];
    }

    /// Nodes handed out so far (diagnostics).
    uint64_t allocated() const
    {
        return next_.load(std::memory_order_relaxed);
    }

  private:
    std::vector<tm::TmCell> cells_;
    std::atomic<uint64_t> next_{1}; // 0 is the null sentinel
};

} // namespace rococo::stamp
