/// @file
/// Transactional array-backed min-heap (STAMP lib/heap analogue), used
/// as yada's shared work queue.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "tm/tm.h"

namespace rococo::stamp {

class TxHeap
{
  public:
    explicit TxHeap(size_t capacity);

    /// Push @p key (priority == key). Returns false when full.
    bool push(tm::Tx& tx, uint64_t key);

    /// Pop the minimum key, or nullopt when empty.
    std::optional<uint64_t> pop(tm::Tx& tx);

    uint64_t size(tm::Tx& tx) const { return tx.load(size_); }
    uint64_t unsafe_size() const { return size_.unsafe_load(); }

  private:
    uint64_t get(tm::Tx& tx, uint64_t i) const
    {
        return tx.load(slots_[i]);
    }
    void set(tm::Tx& tx, uint64_t i, uint64_t v)
    {
        tx.store(slots_[i], v);
    }

    std::vector<tm::TmCell> slots_;
    mutable tm::TmCell size_;
};

} // namespace rococo::stamp
