/// @file
/// Transactional ordered map (STAMP lib/rbtree analogue).
///
/// Implemented as an unbalanced binary search tree rather than a
/// red-black tree: STAMP's map keys are uniformly random, so the BST
/// stays O(log n) in expectation while keeping transactional *write*
/// sets minimal (no rebalancing rotations), which is the
/// representative behaviour for conflict studies — rotations would
/// only add artificial WAW conflicts that the original rbtree avoids
/// via its own tricks. Documented as a substitution in DESIGN.md.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "stamp/containers/node_pool.h"

namespace rococo::stamp {

class TxMap
{
  public:
    enum Field : unsigned { kKey = 0, kValue = 1, kLeft = 2, kRight = 3 };
    static constexpr unsigned kFields = 4;
    using Pool = NodePool<kFields>;

    /// @param capacity maximum number of insertions over the map's life
    explicit TxMap(size_t capacity);

    bool insert(tm::Tx& tx, uint64_t key, uint64_t value);
    bool remove(tm::Tx& tx, uint64_t key);
    std::optional<uint64_t> find(tm::Tx& tx, uint64_t key) const;
    bool contains(tm::Tx& tx, uint64_t key) const
    {
        return find(tx, key).has_value();
    }
    bool update(tm::Tx& tx, uint64_t key, uint64_t value);

    /// Insert or update.
    void put(tm::Tx& tx, uint64_t key, uint64_t value);

    /// Smallest key >= @p key with its value, or nullopt.
    std::optional<std::pair<uint64_t, uint64_t>>
    lower_bound(tm::Tx& tx, uint64_t key) const;

    /// Non-transactional in-order traversal for verification.
    void unsafe_for_each(
        const std::function<void(uint64_t key, uint64_t value)>& fn) const;

    uint64_t unsafe_size() const;

  private:
    /// (parent, node, node_is_left_child); node == kNullNode if absent.
    struct Locate
    {
        uint64_t parent;
        uint64_t node;
        bool is_left;
    };
    Locate locate(tm::Tx& tx, uint64_t key) const;

    uint64_t
    child(tm::Tx& tx, uint64_t node, Field side) const
    {
        return tx.load(pool_.field(node, side));
    }

    void replace_child(tm::Tx& tx, uint64_t parent, bool is_left,
                       uint64_t child) const;

    mutable Pool pool_;
    mutable tm::TmCell root_;

    /// Pseudo parent index meaning "the root link".
    static constexpr uint64_t kRootParent = ~uint64_t{0};
};

} // namespace rococo::stamp
