/// @file
/// Transactional bounded FIFO queue (STAMP lib/queue analogue), used by
/// intruder as the shared packet queue.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "tm/tm.h"

namespace rococo::stamp {

class TxQueue
{
  public:
    explicit TxQueue(size_t capacity);

    /// Enqueue; returns false when full.
    bool push(tm::Tx& tx, uint64_t value);

    /// Dequeue, or nullopt when empty.
    std::optional<uint64_t> pop(tm::Tx& tx);

    uint64_t size(tm::Tx& tx) const;

    /// Non-transactional push for single-threaded setup.
    bool unsafe_push(uint64_t value);
    uint64_t unsafe_size() const;

  private:
    std::vector<tm::TmCell> slots_;
    mutable tm::TmCell head_; ///< next index to pop
    mutable tm::TmCell tail_; ///< next index to push
};

} // namespace rococo::stamp
