/// @file
/// Transactional chained hash table (STAMP lib/hashtable analogue):
/// a fixed array of sorted-list buckets over one shared node pool.
/// Fixed bucket count — no transactional resize — matching STAMP's
/// usage where tables are pre-sized for the workload.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "stamp/containers/tx_list.h"

namespace rococo::stamp {

class TxHashTable
{
  public:
    /// @param buckets bucket count (rounded up to a power of two)
    /// @param capacity node-pool capacity (total insertions)
    TxHashTable(size_t buckets, size_t capacity);

    bool insert(tm::Tx& tx, uint64_t key, uint64_t value);
    bool remove(tm::Tx& tx, uint64_t key);
    std::optional<uint64_t> find(tm::Tx& tx, uint64_t key) const;
    bool contains(tm::Tx& tx, uint64_t key) const;
    bool update(tm::Tx& tx, uint64_t key, uint64_t value);

    size_t bucket_count() const { return buckets_.size(); }

    /// Non-transactional traversal for post-run verification.
    void unsafe_for_each(
        const std::function<void(uint64_t key, uint64_t value)>& fn) const;

    /// Non-transactional total size.
    uint64_t unsafe_size() const;

  private:
    TxList&
    bucket_for(uint64_t key) const
    {
        uint64_t h = key;
        h ^= h >> 33;
        h *= 0x9e3779b97f4a7c15ULL;
        h ^= h >> 29;
        return const_cast<TxList&>(buckets_[h & mask_]);
    }

    std::unique_ptr<TxList::Pool> pool_;
    std::deque<TxList> buckets_;
    uint64_t mask_;
};

} // namespace rococo::stamp
