#include "stamp/containers/tx_heap.h"

namespace rococo::stamp {

TxHeap::TxHeap(size_t capacity)
    : slots_(capacity)
{
}

bool
TxHeap::push(tm::Tx& tx, uint64_t key)
{
    uint64_t n = tx.load(size_);
    if (n >= slots_.size()) return false;
    // Sift up.
    uint64_t i = n;
    while (i > 0) {
        const uint64_t parent = (i - 1) / 2;
        const uint64_t pv = get(tx, parent);
        if (pv <= key) break;
        set(tx, i, pv);
        i = parent;
    }
    set(tx, i, key);
    tx.store(size_, n + 1);
    return true;
}

std::optional<uint64_t>
TxHeap::pop(tm::Tx& tx)
{
    const uint64_t n = tx.load(size_);
    if (n == 0) return std::nullopt;
    const uint64_t top = get(tx, 0);
    const uint64_t last = get(tx, n - 1);
    tx.store(size_, n - 1);
    // Sift the former last element down from the root.
    uint64_t i = 0;
    const uint64_t count = n - 1;
    while (true) {
        const uint64_t left = 2 * i + 1;
        if (left >= count) break;
        uint64_t smallest = left;
        uint64_t smallest_val = get(tx, left);
        const uint64_t right = left + 1;
        if (right < count) {
            const uint64_t rv = get(tx, right);
            if (rv < smallest_val) {
                smallest = right;
                smallest_val = rv;
            }
        }
        if (smallest_val >= last) break;
        set(tx, i, smallest_val);
        i = smallest;
    }
    if (count > 0) set(tx, i, last);
    return top;
}

} // namespace rococo::stamp
