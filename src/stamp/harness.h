/// @file
/// Workload harness for the STAMP-like suite: a Workload interface, a
/// real-thread driver (used by tests and examples) and a by-name
/// factory (used by the benches). Thread counts follow the paper's
/// sweep {1, 4, 8, 14, 28}; on this 1-core reproduction the timed
/// scalability numbers come from the trace-driven simulator (src/sim),
/// while this driver provides functional runs and verification.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"
#include "tm/tm.h"

namespace rococo::stamp {

/// Workload sizing/seed knobs. scale=1 is test-sized; benches use
/// larger scales.
struct WorkloadParams
{
    unsigned scale = 1;
    uint64_t seed = 7;
    /// STAMP ships low- and high-contention inputs for several
    /// benchmarks (kmeans-low/high, vacation-low/high, ...); the flag
    /// widens or concentrates each workload's shared hot sets.
    bool high_contention = true;
};

/// A STAMP-style workload: shared state + a per-thread transaction
/// loop + a post-run invariant check.
class Workload
{
  public:
    virtual ~Workload() = default;

    virtual std::string name() const = 0;

    /// Build/reset the shared state (called once before a run).
    virtual void setup() = 0;

    /// Hook called after setup() with the actual thread count (e.g. to
    /// size internal barriers).
    virtual void prepare_run(unsigned threads) { (void)threads; }

    /// The per-thread transaction loop.
    virtual void worker(tm::TmRuntime& rt, unsigned tid,
                        unsigned threads) = 0;

    /// Check the shared state's invariants after all workers joined.
    virtual bool verify() const = 0;

    /// Workload-level counters (completed work items etc.).
    virtual CounterBag workload_stats() const { return {}; }
};

/// Result of one run.
struct RunResult
{
    double seconds = 0.0;
    bool verified = false;
    CounterBag tm_stats;
    CounterBag workload_stats;

    double
    abort_rate() const
    {
        const double commits =
            static_cast<double>(tm_stats.get("commits"));
        const double aborts = static_cast<double>(tm_stats.get("aborts"));
        return commits + aborts > 0 ? aborts / (commits + aborts) : 0.0;
    }
};

/// setup + spawn @p threads workers + verify. The runtime must be
/// freshly constructed per run (stats accumulate).
RunResult run_workload(Workload& workload, tm::TmRuntime& runtime,
                       unsigned threads);

/// Names of all workloads in the suite (paper order, bayes excluded).
std::vector<std::string> workload_names();

/// Construct a workload by name; aborts on unknown names.
std::unique_ptr<Workload> make_workload(const std::string& name,
                                        const WorkloadParams& params);

} // namespace rococo::stamp
