#include "stamp/harness.h"

#include <chrono>
#include <thread>

#include "common/barrier.h"
#include "common/check.h"
#include "obs/tracer.h"
#include "stamp/workloads/workloads.h"

namespace rococo::stamp {

RunResult
run_workload(Workload& workload, tm::TmRuntime& runtime, unsigned threads)
{
    ROCOCO_CHECK(threads >= 1);
    workload.setup();
    workload.prepare_run(threads);

    Barrier start_barrier(threads);
    std::vector<std::thread> workers;
    workers.reserve(threads);

    const auto t0 = std::chrono::steady_clock::now();
    for (unsigned tid = 0; tid < threads; ++tid) {
        workers.emplace_back([&, tid] {
            runtime.thread_init(tid);
            start_barrier.arrive_and_wait();
            {
                // One span per worker: brackets every tx.* span the
                // runtime emits on this thread in the trace timeline.
                TRACE_SPAN("stamp", "stamp.worker");
                workload.worker(runtime, tid, threads);
            }
            runtime.thread_fini();
        });
    }
    for (auto& worker : workers) worker.join();
    const auto t1 = std::chrono::steady_clock::now();

    RunResult result;
    result.seconds = std::chrono::duration<double>(t1 - t0).count();
    result.verified = workload.verify();
    result.tm_stats = runtime.stats();
    result.workload_stats = workload.workload_stats();
    return result;
}

std::vector<std::string>
workload_names()
{
    return {"genome", "intruder", "kmeans",    "labyrinth",
            "ssca2",  "vacation", "yada"};
}

std::unique_ptr<Workload>
make_workload(const std::string& name, const WorkloadParams& params)
{
    if (name == "vacation") return make_vacation(params);
    if (name == "kmeans") return make_kmeans(params);
    if (name == "genome") return make_genome(params);
    if (name == "intruder") return make_intruder(params);
    if (name == "ssca2") return make_ssca2(params);
    if (name == "labyrinth") return make_labyrinth(params);
    if (name == "yada") return make_yada(params);
    if (name == "bayes") return make_bayes(params); // excluded from names()
    ROCOCO_CHECK(false && "unknown workload");
    return nullptr;
}

} // namespace rococo::stamp
