#include "stamp/trace_capture.h"

#include <algorithm>

namespace rococo::stamp {

uint64_t
SimTrace::total_ops() const
{
    uint64_t total = 0;
    for (const auto& txn : txns) total += txn.ops;
    return total;
}

double
SimTrace::mean_read_set() const
{
    if (txns.empty()) return 0.0;
    uint64_t total = 0;
    for (const auto& txn : txns) total += txn.reads.size();
    return static_cast<double>(total) / static_cast<double>(txns.size());
}

double
SimTrace::mean_write_set() const
{
    if (txns.empty()) return 0.0;
    uint64_t total = 0;
    for (const auto& txn : txns) total += txn.writes.size();
    return static_cast<double>(total) / static_cast<double>(txns.size());
}

double
SimTrace::read_only_fraction() const
{
    if (txns.empty()) return 0.0;
    uint64_t ro = 0;
    for (const auto& txn : txns) ro += txn.read_only() ? 1 : 0;
    return static_cast<double>(ro) / static_cast<double>(txns.size());
}

class TraceCaptureTm::RecordingTx final : public tm::Tx
{
  public:
    explicit RecordingTx(SimTxn& txn)
        : txn_(txn)
    {
    }

    tm::Word
    load(const tm::TmCell& cell) override
    {
        const auto key =
            static_cast<uint64_t>(reinterpret_cast<uintptr_t>(&cell));
        // A location written earlier in the transaction is served from
        // the (conceptual) redo log, not the shared state: don't count
        // it as a shared read.
        if (!std::binary_search(written_sorted_.begin(),
                                written_sorted_.end(), key)) {
            txn_.reads.push_back(key);
        }
        ++txn_.ops;
        return cell.value.load(std::memory_order_relaxed);
    }

    void
    store(tm::TmCell& cell, tm::Word value) override
    {
        const auto key =
            static_cast<uint64_t>(reinterpret_cast<uintptr_t>(&cell));
        txn_.writes.push_back(key);
        const auto pos = std::lower_bound(written_sorted_.begin(),
                                          written_sorted_.end(), key);
        if (pos == written_sorted_.end() || *pos != key) {
            written_sorted_.insert(pos, key);
        }
        ++txn_.ops;
        cell.value.store(value, std::memory_order_relaxed);
    }

    [[noreturn]] void
    retry() override
    {
        throw tm::TxAbortException{};
    }

  private:
    SimTxn& txn_;
    std::vector<uint64_t> written_sorted_;
};

bool
TraceCaptureTm::try_execute(const std::function<void(tm::Tx&)>& body)
{
    SimTxn txn;
    RecordingTx tx(txn);
    try {
        body(tx);
    } catch (const tm::TxAbortException&) {
        return false;
    }
    auto dedup = [](std::vector<uint64_t>& v) {
        std::sort(v.begin(), v.end());
        v.erase(std::unique(v.begin(), v.end()), v.end());
    };
    dedup(txn.reads);
    dedup(txn.writes);
    trace_.txns.push_back(std::move(txn));
    return true;
}

} // namespace rococo::stamp
