/// @file
/// bayes analogue: Bayesian network structure learning (STAMP's
/// bayes). Hill-climbing over a shared directed graph of variables:
/// each transaction evaluates a candidate edge operation (score reads
/// over the adjacency row and per-variable statistics) and applies it
/// if it improves the local score. Characteristics preserved: long,
/// highly variable transactions with read sets that depend on the
/// evolving structure — the variability that made the paper EXCLUDE
/// bayes from its Fig. 10 evaluation (§6.3). It is therefore built and
/// tested here but not part of stamp::workload_names(); use
/// make_workload("bayes", ...) explicitly.
#include "stamp/workloads/workloads.h"

#include <atomic>
#include <memory>

#include "common/rng.h"
#include "stamp/containers/tx_bitmap.h"

namespace rococo::stamp {
namespace {

class Bayes final : public Workload
{
  public:
    explicit Bayes(const WorkloadParams& params)
        : params_(params), variables_(32 * params.scale),
          operations_(400 * params.scale)
    {
    }

    std::string name() const override { return "bayes"; }

    void
    setup() override
    {
        Xoshiro256 rng(params_.seed);
        adjacency_ = std::make_unique<TxBitmap>(variables_ * variables_);
        scores_ = std::make_unique<tm::TmCell[]>(variables_);
        parent_count_ = std::make_unique<tm::TmCell[]>(variables_);
        for (uint64_t v = 0; v < variables_; ++v) {
            scores_[v].unsafe_store(1000 + rng.below(1000));
            parent_count_[v].unsafe_store(0);
        }
        applied_.store(0);
        rejected_.store(0);
        edges_.store(0);
    }

    void
    worker(tm::TmRuntime& rt, unsigned tid, unsigned threads) override
    {
        Xoshiro256 rng(params_.seed ^ (0xbeef + tid));
        const uint64_t my_ops = operations_ / threads +
                                (tid < operations_ % threads ? 1 : 0);
        for (uint64_t n = 0; n < my_ops; ++n) {
            const uint64_t from = rng.below(variables_);
            const uint64_t to = rng.below(variables_);
            if (from == to) continue;
            bool applied = false;
            rt.execute([&](tm::Tx& tx) {
                applied = false;
                // Score the candidate parent set: read the target's
                // current parents (a whole adjacency row — long,
                // structure-dependent read set).
                uint64_t parents = tx.load(parent_count_[to]);
                if (parents >= kMaxParents) return;
                uint64_t row_score = 0;
                for (uint64_t p = 0; p < variables_; ++p) {
                    if (adjacency_->test(tx, p * variables_ + to)) {
                        row_score += tx.load(scores_[p]);
                    }
                }
                const uint64_t gain = tx.load(scores_[from]);
                // Greedy acceptance: adding this parent must improve
                // the mean parent score.
                if (parents > 0 && gain * parents <= row_score) return;
                if (!adjacency_->set(tx, from * variables_ + to)) return;
                tx.store(parent_count_[to], parents + 1);
                // Deterministic local score update.
                tx.store(scores_[to],
                         tx.load(scores_[to]) + gain / (parents + 1));
                applied = true;
            });
            (applied ? applied_ : rejected_).fetch_add(1);
            if (applied) edges_.fetch_add(1);
        }
    }

    bool
    verify() const override
    {
        // Structural accounting: edge bits == sum of parent counts ==
        // accepted operations.
        uint64_t parents_total = 0;
        for (uint64_t v = 0; v < variables_; ++v) {
            parents_total += parent_count_[v].unsafe_load();
            if (parent_count_[v].unsafe_load() > kMaxParents) return false;
        }
        return adjacency_->unsafe_count() == edges_.load() &&
               parents_total == edges_.load() &&
               applied_.load() + rejected_.load() <= operations_;
    }

    CounterBag
    workload_stats() const override
    {
        CounterBag bag;
        bag.bump("edges_learned", edges_.load());
        bag.bump("rejected", rejected_.load());
        return bag;
    }

  private:
    static constexpr uint64_t kMaxParents = 4;

    WorkloadParams params_;
    uint64_t variables_;
    uint64_t operations_;

    std::unique_ptr<TxBitmap> adjacency_;
    std::unique_ptr<tm::TmCell[]> scores_;
    std::unique_ptr<tm::TmCell[]> parent_count_;
    std::atomic<uint64_t> applied_{0};
    std::atomic<uint64_t> rejected_{0};
    std::atomic<uint64_t> edges_{0};
};

} // namespace

std::unique_ptr<Workload>
make_bayes(const WorkloadParams& params)
{
    return std::make_unique<Bayes>(params);
}

} // namespace rococo::stamp
