/// @file
/// vacation analogue: an online travel reservation system (STAMP's
/// emulated OLTP workload). Three relations (cars, flights, rooms) and
/// a customer table, all transactional maps. Clients issue reservation
/// transactions (query a handful of items, book the cheapest
/// available), table updates and customer deletions. Characteristics
/// preserved: medium-length transactions over tree-shaped structures,
/// low-to-medium contention.
#include "stamp/workloads/workloads.h"

#include <array>
#include <atomic>

#include "common/check.h"
#include "common/rng.h"
#include "stamp/containers/tx_map.h"

namespace rococo::stamp {
namespace {

/// Pack (free units, price, used units) into one value word.
uint64_t
pack_item(uint64_t free, uint64_t price, uint64_t used)
{
    return (free & 0xffff) | ((price & 0xffff) << 16) |
           ((used & 0xffff) << 32);
}
uint64_t item_free(uint64_t v) { return v & 0xffff; }
uint64_t item_price(uint64_t v) { return (v >> 16) & 0xffff; }
uint64_t item_used(uint64_t v) { return (v >> 32) & 0xffff; }

class Vacation final : public Workload
{
  public:
    explicit Vacation(const WorkloadParams& params)
        : params_(params),
          relations_per_table_((params.high_contention ? 256 : 1024) *
                               params.scale),
          txns_total_(2000 * params.scale),
          customers_(relations_per_table_)
    {
    }

    std::string name() const override { return "vacation"; }

    void
    setup() override
    {
        Xoshiro256 rng(params_.seed);
        for (auto& table : tables_) {
            table = std::make_unique<TxMap>(relations_per_table_ + 64);
        }
        customer_bills_ =
            std::make_unique<TxMap>(customers_ + 64);
        refunds_.unsafe_store(0);

        // Populate tables and customers non-transactionally via the
        // map's own API with a direct Tx: use a tiny inline runtime.
        struct DirectTx final : tm::Tx
        {
            tm::Word load(const tm::TmCell& c) override
            {
                return c.unsafe_load();
            }
            void store(tm::TmCell& c, tm::Word v) override
            {
                c.unsafe_store(v);
            }
            [[noreturn]] void retry() override
            {
                throw tm::TxAbortException{};
            }
        } tx;

        // Insert ids in shuffled order so the BST-based maps stay
        // balanced (sequential insertion would degenerate them).
        std::vector<uint64_t> ids(relations_per_table_);
        for (uint64_t id = 0; id < relations_per_table_; ++id) ids[id] = id;
        for (size_t i = ids.size(); i > 1; --i) {
            std::swap(ids[i - 1], ids[rng.below(i)]);
        }
        for (auto& table : tables_) {
            for (uint64_t id : ids) {
                const uint64_t cap = 5 + rng.below(10);
                const uint64_t price = 50 + rng.below(450);
                table->insert(tx, id, pack_item(cap, price, 0));
                initial_capacity_ += cap;
            }
        }
        for (uint64_t id : ids) {
            customer_bills_->insert(tx, id, 0);
        }
        done_.store(0);
    }

    void
    worker(tm::TmRuntime& rt, unsigned tid, unsigned threads) override
    {
        Xoshiro256 rng(params_.seed ^ (0x1234567 + tid));
        const uint64_t my_txns = txns_total_ / threads +
                                 (tid < txns_total_ % threads ? 1 : 0);
        for (uint64_t n = 0; n < my_txns; ++n) {
            const uint64_t dice = rng.below(100);
            if (dice < 90) {
                reserve(rt, rng);
            } else if (dice < 95) {
                delete_customer(rt, rng);
            } else {
                update_tables(rt, rng);
            }
        }
        done_.fetch_add(my_txns);
    }

    bool
    verify() const override
    {
        // Per-item accounting: used + free == capacity is implied by
        // construction (we move units between the two fields in one
        // word). Check the money invariant instead: every reservation
        // moved `price` into some bill, deletions moved bills into
        // refunds, so bills + refunds == sum(used * price).
        uint64_t owed = 0;
        for (const auto& table : tables_) {
            table->unsafe_for_each([&](uint64_t, uint64_t v) {
                owed += item_used(v) * item_price(v);
            });
        }
        uint64_t bills = 0;
        customer_bills_->unsafe_for_each(
            [&](uint64_t, uint64_t bill) { bills += bill; });
        const uint64_t refunds = refunds_.unsafe_load();
        return bills + refunds == owed &&
               done_.load() == txns_total_;
    }

    CounterBag
    workload_stats() const override
    {
        CounterBag bag;
        bag.bump("transactions", done_.load());
        return bag;
    }

  private:
    void
    reserve(tm::TmRuntime& rt, Xoshiro256& rng)
    {
        // STAMP's MakeReservation: one client transaction queries a few
        // candidates in EACH of the three tables (car, flight, room)
        // and books the cheapest available per table, all atomically
        // with the customer's bill update.
        const uint64_t customer = rng.below(customers_);
        std::array<std::array<uint64_t, 2>, 3> candidates;
        for (auto& per_table : candidates) {
            for (auto& c : per_table) c = rng.below(relations_per_table_);
        }

        rt.execute([&](tm::Tx& tx) {
            uint64_t total_price = 0;
            for (unsigned table = 0; table < 3; ++table) {
                uint64_t best_id = ~uint64_t{0};
                uint64_t best_val = 0;
                for (uint64_t id : candidates[table]) {
                    auto v = tables_[table]->find(tx, id);
                    if (!v) continue;
                    if (item_free(*v) == 0) continue;
                    if (best_id == ~uint64_t{0} ||
                        item_price(*v) < item_price(best_val)) {
                        best_id = id;
                        best_val = *v;
                    }
                }
                if (best_id == ~uint64_t{0}) continue; // table booked out
                tables_[table]->update(
                    tx, best_id,
                    pack_item(item_free(best_val) - 1,
                              item_price(best_val),
                              item_used(best_val) + 1));
                total_price += item_price(best_val);
            }
            if (total_price == 0) return; // nothing booked: read-only
            auto bill = customer_bills_->find(tx, customer);
            if (bill) {
                customer_bills_->update(tx, customer,
                                        *bill + total_price);
            } else {
                // Customer was deleted: re-create with this bill.
                customer_bills_->insert(tx, customer, total_price);
            }
        });
    }

    void
    delete_customer(tm::TmRuntime& rt, Xoshiro256& rng)
    {
        const uint64_t customer = rng.below(customers_);
        rt.execute([&](tm::Tx& tx) {
            auto bill = customer_bills_->find(tx, customer);
            if (!bill || *bill == 0) return;
            tm::Word refunds = tx.load(refunds_);
            tx.store(refunds_, refunds + *bill);
            customer_bills_->update(tx, customer, 0);
        });
    }

    void
    update_tables(tm::TmRuntime& rt, Xoshiro256& rng)
    {
        const unsigned table = static_cast<unsigned>(rng.below(3));
        std::array<uint64_t, 2> ids;
        for (auto& id : ids) id = rng.below(relations_per_table_);
        rt.execute([&](tm::Tx& tx) {
            for (uint64_t id : ids) {
                auto v = tables_[table]->find(tx, id);
                if (!v) continue;
                // Add one unit of capacity.
                tables_[table]->update(
                    tx, id,
                    pack_item(item_free(*v) + 1, item_price(*v),
                              item_used(*v)));
            }
        });
    }

    WorkloadParams params_;
    uint64_t relations_per_table_;
    uint64_t txns_total_;
    uint64_t customers_;
    uint64_t initial_capacity_ = 0;

    std::array<std::unique_ptr<TxMap>, 3> tables_;
    std::unique_ptr<TxMap> customer_bills_;
    mutable tm::TmCell refunds_;
    std::atomic<uint64_t> done_{0};
};

} // namespace

std::unique_ptr<Workload>
make_vacation(const WorkloadParams& params)
{
    return std::make_unique<Vacation>(params);
}

} // namespace rococo::stamp
