/// @file
/// labyrinth analogue: transactional maze routing (Lee's algorithm in
/// STAMP). Threads pull (source, destination) pairs from a shared
/// queue and claim an L-shaped path through a 2D grid in a single long
/// transaction: every cell on the candidate path is read, and if the
/// whole path is free it is written with the route's id.
/// Characteristics preserved: long transactions with large read/write
/// sets and non-negligible true conflicts on shared grid cells — the
/// transaction-friendly, pointer-chasing-style workload where the
/// paper reports ROCoCoTM's largest abort-rate advantage (§6.3).
#include "stamp/workloads/workloads.h"

#include <atomic>
#include <memory>

#include "common/rng.h"
#include "stamp/containers/tx_queue.h"

namespace rococo::stamp {
namespace {

class Labyrinth final : public Workload
{
  public:
    explicit Labyrinth(const WorkloadParams& params)
        : params_(params), side_(64 * params.scale),
          routes_(params.high_contention ? side_ * 2 : side_)
    {
    }

    std::string name() const override { return "labyrinth"; }

    void
    setup() override
    {
        Xoshiro256 rng(params_.seed);
        grid_ = std::make_unique<tm::TmCell[]>(side_ * side_);
        queue_ = std::make_unique<TxQueue>(routes_ + 1);
        for (uint64_t r = 0; r < routes_; ++r) {
            const uint64_t sx = rng.below(side_), sy = rng.below(side_);
            const uint64_t dx = rng.below(side_), dy = rng.below(side_);
            queue_->unsafe_push(sx << 48 | sy << 32 | dx << 16 | dy);
        }
        routed_.store(0);
        blocked_.store(0);
        claimed_cells_.store(0);
    }

    void
    worker(tm::TmRuntime& rt, unsigned tid, unsigned threads) override
    {
        (void)tid;
        (void)threads;
        for (;;) {
            uint64_t work = 0;
            bool have = false;
            rt.execute([&](tm::Tx& tx) {
                auto w = queue_->pop(tx);
                have = w.has_value();
                work = have ? *w : 0;
            });
            if (!have) break;

            const uint64_t sx = work >> 48 & 0xffff, sy = work >> 32 & 0xffff;
            const uint64_t dx = work >> 16 & 0xffff, dy = work & 0xffff;
            const uint64_t route_id = work | (uint64_t{1} << 63);

            bool ok = false;
            uint64_t cells = 0;
            rt.execute([&](tm::Tx& tx) {
                // Try horizontal-then-vertical; fall back to
                // vertical-then-horizontal. Both legs are validated by
                // transactional reads before any write.
                ok = try_route(tx, sx, sy, dx, dy, route_id,
                               /*horizontal_first=*/true, cells) ||
                     try_route(tx, sx, sy, dx, dy, route_id,
                               /*horizontal_first=*/false, cells);
            });
            if (ok) {
                routed_.fetch_add(1);
                claimed_cells_.fetch_add(cells);
            } else {
                blocked_.fetch_add(1);
            }
        }
    }

    bool
    verify() const override
    {
        // Every claimed cell carries exactly one route id; total
        // claimed cells must match the accumulated path lengths, and
        // all routes must have been decided one way or the other.
        uint64_t marked = 0;
        for (uint64_t i = 0; i < side_ * side_; ++i) {
            if (grid_[i].unsafe_load() != 0) ++marked;
        }
        return marked == claimed_cells_.load() &&
               routed_.load() + blocked_.load() == routes_;
    }

    CounterBag
    workload_stats() const override
    {
        CounterBag bag;
        bag.bump("routed", routed_.load());
        bag.bump("blocked", blocked_.load());
        bag.bump("cells", claimed_cells_.load());
        return bag;
    }

  private:
    /// Walk the L-path; returns false (without writing) if any cell is
    /// taken by another route. @p cells returns the path length.
    bool
    try_route(tm::Tx& tx, uint64_t sx, uint64_t sy, uint64_t dx,
              uint64_t dy, uint64_t route_id, bool horizontal_first,
              uint64_t& cells)
    {
        path_scratch_.clear();
        const uint64_t mid_x = horizontal_first ? dx : sx;
        const uint64_t mid_y = horizontal_first ? sy : dy;

        auto walk = [&](uint64_t x0, uint64_t y0, uint64_t x1, uint64_t y1,
                        bool skip_first) {
            // Straight segment (one of x or y fixed).
            const int64_t step_x = x0 == x1 ? 0 : (x1 > x0 ? 1 : -1);
            const int64_t step_y = y0 == y1 ? 0 : (y1 > y0 ? 1 : -1);
            int64_t x = static_cast<int64_t>(x0);
            int64_t y = static_cast<int64_t>(y0);
            bool skip = skip_first;
            while (true) {
                if (!skip) {
                    path_scratch_.push_back(
                        static_cast<uint64_t>(y) * side_ +
                        static_cast<uint64_t>(x));
                }
                skip = false;
                if (x == static_cast<int64_t>(x1) &&
                    y == static_cast<int64_t>(y1)) {
                    break;
                }
                x += step_x;
                y += step_y;
            }
        };
        walk(sx, sy, mid_x, mid_y, /*skip_first=*/false);
        // The corner cell was already recorded by the first leg.
        walk(mid_x, mid_y, dx, dy, /*skip_first=*/true);

        // Validate: all cells free or already ours (start==end overlap).
        for (uint64_t cell : path_scratch_) {
            const uint64_t owner = tx.load(grid_[cell]);
            if (owner != 0) return false;
        }
        // Claim.
        for (uint64_t cell : path_scratch_) {
            tx.store(grid_[cell], route_id);
        }
        cells = path_scratch_.size();
        return true;
    }

    WorkloadParams params_;
    uint64_t side_;
    uint64_t routes_;

    std::unique_ptr<tm::TmCell[]> grid_;
    std::unique_ptr<TxQueue> queue_;
    std::atomic<uint64_t> routed_{0};
    std::atomic<uint64_t> blocked_{0};
    std::atomic<uint64_t> claimed_cells_{0};

    static thread_local std::vector<uint64_t> path_scratch_;
};

thread_local std::vector<uint64_t> Labyrinth::path_scratch_;

} // namespace

std::unique_ptr<Workload>
make_labyrinth(const WorkloadParams& params)
{
    return std::make_unique<Labyrinth>(params);
}

} // namespace rococo::stamp
