/// @file
/// genome analogue: gene sequencing by segment deduplication and
/// overlap matching (STAMP's genome). Phase 1 inserts a shuffled
/// multiset of segments into a transactional hash set (duplicate
/// inserts are read-only transactions — the paper notes genome's large
/// fraction of empty-write-set transactions, §6.3). Phase 2 links each
/// unique segment to its successor, rebuilding the gene as a chain.
#include "stamp/workloads/workloads.h"

#include <atomic>

#include "common/barrier.h"
#include "common/rng.h"
#include "stamp/containers/tx_hashtable.h"
#include "stamp/containers/tx_map.h"

namespace rococo::stamp {
namespace {

class Genome final : public Workload
{
  public:
    explicit Genome(const WorkloadParams& params)
        : params_(params),
          unique_segments_((params.high_contention ? 1024 : 2048) *
                           params.scale),
          duplication_(params.high_contention ? 4 : 2)
    {
    }

    std::string name() const override { return "genome"; }

    void
    setup() override
    {
        Xoshiro256 rng(params_.seed);
        // The "gene": a sequence of unique segment ids; segment value
        // encodes its position.
        segment_ids_.resize(unique_segments_);
        for (uint64_t i = 0; i < unique_segments_; ++i) {
            // Random, unique-ish 48-bit ids; position recoverable.
            segment_ids_[i] = (rng() & 0xffff'ffff'0000ULL) | i;
        }
        // Duplicated and shuffled pool of observed segments.
        observed_.clear();
        observed_.reserve(unique_segments_ * duplication_);
        for (unsigned d = 0; d < duplication_; ++d) {
            for (uint64_t id : segment_ids_) observed_.push_back(id);
        }
        for (size_t i = observed_.size(); i > 1; --i) {
            std::swap(observed_[i - 1], observed_[rng.below(i)]);
        }

        segments_ = std::make_unique<TxHashTable>(
            unique_segments_ / 4, observed_.size() + 64);
        chain_ = std::make_unique<TxMap>(2 * unique_segments_ + 64);
        inserted_.store(0);
        linked_.store(0);
        reconstructed_.store(0);
    }

    void
    prepare_run(unsigned threads) override
    {
        barrier_ = std::make_unique<Barrier>(threads);
    }

    void
    worker(tm::TmRuntime& rt, unsigned tid, unsigned threads) override
    {
        // Phase 1: deduplicate observed segments.
        const size_t begin = observed_.size() * tid / threads;
        const size_t end = observed_.size() * (tid + 1) / threads;
        uint64_t inserted = 0;
        for (size_t i = begin; i < end; ++i) {
            const uint64_t id = observed_[i];
            rt.execute([&](tm::Tx& tx) {
                // Duplicate: the insert fails and the transaction stays
                // read-only.
                inserted = segments_->insert(tx, id, id & 0xffff) ? 1 : 0;
            });
            inserted_.fetch_add(inserted);
        }
        barrier_->arrive_and_wait();

        // Phase 2: link each unique segment to its successor by
        // position, reading both out of the hash set.
        const uint64_t sbegin = (unique_segments_ - 1) * tid / threads;
        const uint64_t send = (unique_segments_ - 1) * (tid + 1) / threads;
        for (uint64_t pos = sbegin; pos < send; ++pos) {
            const uint64_t a = segment_ids_[pos];
            const uint64_t b = segment_ids_[pos + 1];
            bool ok = false;
            rt.execute([&](tm::Tx& tx) {
                ok = segments_->contains(tx, a) &&
                     segments_->contains(tx, b) &&
                     chain_->insert(tx, a, b);
            });
            if (ok) linked_.fetch_add(1);
        }
        barrier_->arrive_and_wait();

        // Phase 3: sequence reconstruction — walk the chain in
        // read-only transactions (a strided share per thread) and check
        // each link lands on the expected successor. Mirrors genome's
        // final sequencing pass and adds the read-heavy tail the
        // benchmark is known for.
        uint64_t verified = 0;
        for (uint64_t pos = tid; pos + 1 < unique_segments_;
             pos += threads) {
            const uint64_t a = segment_ids_[pos];
            const uint64_t expect = segment_ids_[pos + 1];
            bool good = false;
            rt.execute([&](tm::Tx& tx) {
                auto next = chain_->find(tx, a);
                good = next.has_value() && *next == expect;
            });
            if (good) ++verified;
        }
        reconstructed_.fetch_add(verified);
    }

    bool
    verify() const override
    {
        return inserted_.load() == unique_segments_ &&
               segments_->unsafe_size() == unique_segments_ &&
               linked_.load() == unique_segments_ - 1 &&
               chain_->unsafe_size() == unique_segments_ - 1 &&
               reconstructed_.load() == unique_segments_ - 1;
    }

    CounterBag
    workload_stats() const override
    {
        CounterBag bag;
        bag.bump("unique_segments", inserted_.load());
        bag.bump("links", linked_.load());
        bag.bump("reconstructed", reconstructed_.load());
        return bag;
    }

  private:
    WorkloadParams params_;
    uint64_t unique_segments_;
    unsigned duplication_;

    std::vector<uint64_t> segment_ids_;
    std::vector<uint64_t> observed_;
    std::unique_ptr<TxHashTable> segments_;
    std::unique_ptr<TxMap> chain_;
    std::unique_ptr<Barrier> barrier_;
    std::atomic<uint64_t> inserted_{0};
    std::atomic<uint64_t> linked_{0};
    std::atomic<uint64_t> reconstructed_{0};
};

} // namespace

std::unique_ptr<Workload>
make_genome(const WorkloadParams& params)
{
    return std::make_unique<Genome>(params);
}

} // namespace rococo::stamp
