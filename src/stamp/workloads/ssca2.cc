/// @file
/// ssca2 analogue: kernel 1 of the SSCA2 graph benchmark — parallel
/// construction of a large sparse graph's adjacency structure.
/// Characteristics preserved: an enormous number of tiny transactions
/// (append one edge: read a degree counter, write a slot, bump the
/// counter) with low contention because vertices vastly outnumber
/// threads; scalability is bounded by per-transaction overhead, which
/// is exactly why ssca2 scales poorly on ROCoCoTM (§6.3).
#include "stamp/workloads/workloads.h"

#include <atomic>
#include <memory>

#include "common/rng.h"

namespace rococo::stamp {
namespace {

class Ssca2 final : public Workload
{
  public:
    explicit Ssca2(const WorkloadParams& params)
        : params_(params),
          vertices_((params.high_contention ? 1024 : 4096) * params.scale),
          edges_(8 * vertices_), max_degree_(64)
    {
    }

    std::string name() const override { return "ssca2"; }

    void
    setup() override
    {
        Xoshiro256 rng(params_.seed);
        edge_list_.resize(edges_);
        for (auto& e : edge_list_) {
            e = {rng.below(vertices_), rng.below(vertices_)};
        }
        degree_ = std::make_unique<tm::TmCell[]>(vertices_);
        adjacency_ =
            std::make_unique<tm::TmCell[]>(vertices_ * max_degree_);
        added_.store(0);
        dropped_.store(0);
    }

    void
    worker(tm::TmRuntime& rt, unsigned tid, unsigned threads) override
    {
        const size_t begin = edge_list_.size() * tid / threads;
        const size_t end = edge_list_.size() * (tid + 1) / threads;
        uint64_t added = 0, dropped = 0;
        for (size_t i = begin; i < end; ++i) {
            const auto [u, v] = edge_list_[i];
            bool ok = false;
            rt.execute([&](tm::Tx& tx) {
                const uint64_t d = tx.load(degree_[u]);
                if (d >= max_degree_) {
                    ok = false;
                    return; // degree-capped: read-only transaction
                }
                tx.store(adjacency_[u * max_degree_ + d], v);
                tx.store(degree_[u], d + 1);
                ok = true;
            });
            (ok ? added : dropped) += 1;
        }
        added_.fetch_add(added);
        dropped_.fetch_add(dropped);
    }

    bool
    verify() const override
    {
        uint64_t total_degree = 0;
        for (uint64_t v = 0; v < vertices_; ++v) {
            total_degree += degree_[v].unsafe_load();
        }
        return total_degree == added_.load() &&
               added_.load() + dropped_.load() == edges_;
    }

    CounterBag
    workload_stats() const override
    {
        CounterBag bag;
        bag.bump("edges_added", added_.load());
        bag.bump("edges_dropped", dropped_.load());
        return bag;
    }

  private:
    WorkloadParams params_;
    uint64_t vertices_;
    uint64_t edges_;
    uint64_t max_degree_;

    std::vector<std::pair<uint64_t, uint64_t>> edge_list_;
    std::unique_ptr<tm::TmCell[]> degree_;
    std::unique_ptr<tm::TmCell[]> adjacency_;
    std::atomic<uint64_t> added_{0};
    std::atomic<uint64_t> dropped_{0};
};

} // namespace

std::unique_ptr<Workload>
make_ssca2(const WorkloadParams& params)
{
    return std::make_unique<Ssca2>(params);
}

} // namespace rococo::stamp
