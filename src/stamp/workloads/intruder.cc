/// @file
/// intruder analogue: network intrusion detection (STAMP's intruder).
/// Stage 1 (capture): threads pull packet fragments off one shared
/// transactional queue — short, highly contended transactions. Stage 2
/// (reassembly): fragments are inserted into a per-flow table; the
/// thread completing a flow claims it. Stage 3 (detection) runs
/// outside any transaction, as in the original. Characteristics
/// preserved: a hot shared queue plus medium map transactions and a
/// large fraction of small transactions.
#include "stamp/workloads/workloads.h"

#include <atomic>

#include "common/rng.h"
#include "stamp/containers/tx_hashtable.h"
#include "stamp/containers/tx_queue.h"

namespace rococo::stamp {
namespace {

/// Fragment encoding: flow id * 16 + fragment index, count in high bits.
uint64_t
pack_fragment(uint64_t flow, uint64_t index, uint64_t count)
{
    return flow << 16 | index << 8 | count;
}
uint64_t frag_flow(uint64_t f) { return f >> 16; }
uint64_t frag_index(uint64_t f) { return (f >> 8) & 0xff; }
uint64_t frag_count(uint64_t f) { return f & 0xff; }

class Intruder final : public Workload
{
  public:
    explicit Intruder(const WorkloadParams& params)
        : params_(params),
          flows_((params.high_contention ? 512 : 1024) * params.scale)
    {
    }

    std::string name() const override { return "intruder"; }

    void
    setup() override
    {
        Xoshiro256 rng(params_.seed);
        // Build fragments: each flow has 1..4 fragments, shuffled
        // globally to emulate interleaved arrival.
        std::vector<uint64_t> fragments;
        total_fragments_ = 0;
        for (uint64_t flow = 0; flow < flows_; ++flow) {
            const uint64_t count = 1 + rng.below(4);
            for (uint64_t idx = 0; idx < count; ++idx) {
                fragments.push_back(pack_fragment(flow, idx, count));
            }
            total_fragments_ += count;
        }
        for (size_t i = fragments.size(); i > 1; --i) {
            std::swap(fragments[i - 1], fragments[rng.below(i)]);
        }

        queue_ = std::make_unique<TxQueue>(fragments.size() + 1);
        for (uint64_t f : fragments) queue_->unsafe_push(f);

        // Per-flow fragment table: key = flow*16 + index; plus a
        // per-flow arrival counter at key = flow*16 + 15.
        table_ = std::make_unique<TxHashTable>(
            flows_, 2 * (total_fragments_ + flows_) + 64);
        completed_.store(0);
        processed_.store(0);
    }

    void
    worker(tm::TmRuntime& rt, unsigned tid, unsigned threads) override
    {
        (void)tid;
        (void)threads;
        for (;;) {
            // Stage 1: grab a fragment (short hot transaction).
            uint64_t fragment = 0;
            bool have = false;
            rt.execute([&](tm::Tx& tx) {
                auto f = queue_->pop(tx);
                have = f.has_value();
                fragment = have ? *f : 0;
            });
            if (!have) break;

            // Stage 2: insert into the flow's reassembly slots and
            // count arrivals; the arrival completing the flow claims it.
            const uint64_t flow = frag_flow(fragment);
            const uint64_t count = frag_count(fragment);
            bool completed = false;
            rt.execute([&](tm::Tx& tx) {
                completed = false;
                table_->insert(tx, flow * 16 + frag_index(fragment),
                               fragment);
                const uint64_t counter_key = flow * 16 + 15;
                auto arrived = table_->find(tx, counter_key);
                const uint64_t now = arrived ? *arrived + 1 : 1;
                if (arrived) {
                    table_->update(tx, counter_key, now);
                } else {
                    table_->insert(tx, counter_key, now);
                }
                completed = now == count;
            });
            processed_.fetch_add(1);

            // Stage 3: detection. The completing thread re-reads the
            // reassembled flow transactionally (a read-only
            // transaction — intruder's large empty-write-set fraction,
            // §6.3) and then "detects" outside the transaction.
            if (completed) {
                uint64_t checksum = 0;
                rt.execute([&](tm::Tx& tx) {
                    checksum = 0;
                    for (uint64_t idx = 0; idx < count; ++idx) {
                        auto f = table_->find(tx, flow * 16 + idx);
                        if (f) checksum ^= *f;
                    }
                });
                (void)checksum;
                completed_.fetch_add(1);
            }
        }
    }

    bool
    verify() const override
    {
        return processed_.load() == total_fragments_ &&
               completed_.load() == flows_ &&
               queue_->unsafe_size() == 0;
    }

    CounterBag
    workload_stats() const override
    {
        CounterBag bag;
        bag.bump("fragments", processed_.load());
        bag.bump("flows_completed", completed_.load());
        return bag;
    }

  private:
    WorkloadParams params_;
    uint64_t flows_;
    uint64_t total_fragments_ = 0;

    std::unique_ptr<TxQueue> queue_;
    std::unique_ptr<TxHashTable> table_;
    std::atomic<uint64_t> completed_{0};
    std::atomic<uint64_t> processed_{0};
};

} // namespace

std::unique_ptr<Workload>
make_intruder(const WorkloadParams& params)
{
    return std::make_unique<Intruder>(params);
}

} // namespace rococo::stamp
