/// @file
/// kmeans analogue: iterative K-means clustering (STAMP's
/// high-contention data-mining workload). Points are partitioned
/// across threads; each point's assignment reads the previous
/// iteration's centers non-transactionally (double buffering, as in
/// STAMP) and updates the shared next-iteration accumulators in one
/// short transaction. Characteristics preserved: very short
/// transactions, high contention on K accumulator records.
#include "stamp/workloads/workloads.h"

#include <atomic>
#include <cmath>
#include <memory>

#include "common/barrier.h"
#include "common/check.h"
#include "common/rng.h"

namespace rococo::stamp {
namespace {

constexpr unsigned kDims = 4;

class Kmeans final : public Workload
{
  public:
    explicit Kmeans(const WorkloadParams& params)
        : params_(params), points_(1024 * params.scale),
          clusters_(params.high_contention ? 8 : 32), iterations_(4)
    {
    }

    std::string name() const override { return "kmeans"; }

    void
    setup() override
    {
        Xoshiro256 rng(params_.seed);
        coords_.assign(points_ * kDims, 0);
        for (auto& c : coords_) {
            c = static_cast<int64_t>(rng.below(1000));
        }
        centers_.assign(clusters_ * kDims, 0);
        for (unsigned k = 0; k < clusters_; ++k) {
            for (unsigned d = 0; d < kDims; ++d) {
                centers_[k * kDims + d] = coords_[k * kDims + d];
            }
        }
        // Shared accumulators: per cluster, kDims sums + one count.
        sums_ = std::make_unique<tm::TmCell[]>(clusters_ * kDims);
        counts_ = std::make_unique<tm::TmCell[]>(clusters_);
        assigned_total_.store(0);
    }

    void
    prepare_run(unsigned threads) override
    {
        barrier_ = std::make_unique<Barrier>(threads);
    }

    void
    worker(tm::TmRuntime& rt, unsigned tid, unsigned threads) override
    {
        const uint64_t begin = points_ * tid / threads;
        const uint64_t end = points_ * (tid + 1) / threads;

        for (unsigned iter = 0; iter < iterations_; ++iter) {
            if (tid == 0) reset_accumulators();
            barrier_->arrive_and_wait();

            for (uint64_t p = begin; p < end; ++p) {
                const unsigned k = nearest_center(p);
                rt.execute([&](tm::Tx& tx) {
                    for (unsigned d = 0; d < kDims; ++d) {
                        tm::TmCell& cell = sums_[k * kDims + d];
                        tx.store(cell,
                                 tx.load(cell) +
                                     static_cast<uint64_t>(
                                         coords_[p * kDims + d]));
                    }
                    tx.store(counts_[k], tx.load(counts_[k]) + 1);
                });
            }
            assigned_total_.fetch_add(end - begin);
            barrier_->arrive_and_wait();

            if (tid == 0) recompute_centers();
            barrier_->arrive_and_wait();
        }
    }

    bool
    verify() const override
    {
        // Last iteration's accumulators must account for every point
        // exactly once, and the total assignments for all iterations.
        uint64_t assigned = 0;
        for (unsigned k = 0; k < clusters_; ++k) {
            assigned += counts_[k].unsafe_load();
        }
        return assigned == points_ &&
               assigned_total_.load() == points_ * iterations_;
    }

    CounterBag
    workload_stats() const override
    {
        CounterBag bag;
        bag.bump("points_assigned", assigned_total_.load());
        return bag;
    }

  private:
    unsigned
    nearest_center(uint64_t p) const
    {
        unsigned best = 0;
        int64_t best_dist = -1;
        for (unsigned k = 0; k < clusters_; ++k) {
            int64_t dist = 0;
            for (unsigned d = 0; d < kDims; ++d) {
                const int64_t delta =
                    coords_[p * kDims + d] - centers_[k * kDims + d];
                dist += delta * delta;
            }
            if (best_dist < 0 || dist < best_dist) {
                best_dist = dist;
                best = k;
            }
        }
        return best;
    }

    void
    reset_accumulators()
    {
        for (unsigned i = 0; i < clusters_ * kDims; ++i) {
            sums_[i].unsafe_store(0);
        }
        for (unsigned k = 0; k < clusters_; ++k) {
            counts_[k].unsafe_store(0);
        }
    }

    void
    recompute_centers()
    {
        for (unsigned k = 0; k < clusters_; ++k) {
            const uint64_t count = counts_[k].unsafe_load();
            if (count == 0) continue;
            for (unsigned d = 0; d < kDims; ++d) {
                centers_[k * kDims + d] = static_cast<int64_t>(
                    sums_[k * kDims + d].unsafe_load() / count);
            }
        }
    }

    WorkloadParams params_;
    uint64_t points_;
    unsigned clusters_;
    unsigned iterations_;

    std::vector<int64_t> coords_;  ///< read-only point data
    std::vector<int64_t> centers_; ///< previous-iteration centers
    std::unique_ptr<tm::TmCell[]> sums_;
    std::unique_ptr<tm::TmCell[]> counts_;
    std::unique_ptr<Barrier> barrier_;
    std::atomic<uint64_t> assigned_total_{0};
};

} // namespace

std::unique_ptr<Workload>
make_kmeans(const WorkloadParams& params)
{
    return std::make_unique<Kmeans>(params);
}

} // namespace rococo::stamp
