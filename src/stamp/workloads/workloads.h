/// @file
/// Factories for the seven STAMP-like workloads (bayes excluded, as in
/// the paper's evaluation §6.3). Each is a behaviour-matched analogue
/// of its STAMP namesake, written against the word-based TM API; see
/// each .cc for the characteristics it preserves.
#pragma once

#include <memory>

#include "stamp/harness.h"

namespace rococo::stamp {

std::unique_ptr<Workload> make_vacation(const WorkloadParams& params);
std::unique_ptr<Workload> make_kmeans(const WorkloadParams& params);
std::unique_ptr<Workload> make_genome(const WorkloadParams& params);
std::unique_ptr<Workload> make_intruder(const WorkloadParams& params);
std::unique_ptr<Workload> make_ssca2(const WorkloadParams& params);
std::unique_ptr<Workload> make_labyrinth(const WorkloadParams& params);
std::unique_ptr<Workload> make_yada(const WorkloadParams& params);

/// bayes is implemented for completeness but EXCLUDED from
/// workload_names(), exactly as the paper excludes it from Fig. 10
/// "due [to] its high variability" (§6.3).
std::unique_ptr<Workload> make_bayes(const WorkloadParams& params);

} // namespace rococo::stamp
