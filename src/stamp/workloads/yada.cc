/// @file
/// yada analogue: Delaunay mesh refinement (STAMP's yada). A shared
/// transactional min-heap holds "bad" elements; a worker pops one,
/// reads its cavity (a neighbourhood of mesh cells), re-triangulates
/// (rewrites the cavity) and may enqueue newly created bad elements.
/// Characteristics preserved: medium-to-long transactions with
/// variable footprints, a shared work heap, and cascading work
/// generation — the second workload where the paper highlights
/// ROCoCoTM's abort-rate advantage (§6.3).
#include "stamp/workloads/workloads.h"

#include <atomic>
#include <memory>

#include "common/rng.h"
#include "stamp/containers/tx_heap.h"

namespace rococo::stamp {
namespace {

constexpr uint64_t kQualityThreshold = 100;
constexpr uint64_t kCavity = 4; ///< cells on each side of the element

class Yada final : public Workload
{
  public:
    explicit Yada(const WorkloadParams& params)
        : params_(params), elements_(1024 * params.scale),
          initial_bad_(elements_ / (params.high_contention ? 8 : 32))
    {
    }

    std::string name() const override { return "yada"; }

    void
    setup() override
    {
        Xoshiro256 rng(params_.seed);
        quality_ = std::make_unique<tm::TmCell[]>(elements_);
        for (uint64_t e = 0; e < elements_; ++e) {
            quality_[e].unsafe_store(kQualityThreshold +
                                     rng.below(100));
        }
        // Heap sized for the worst-case cascade volume.
        heap_ = std::make_unique<TxHeap>(elements_ * 4);
        struct DirectTx final : tm::Tx
        {
            tm::Word load(const tm::TmCell& c) override
            {
                return c.unsafe_load();
            }
            void store(tm::TmCell& c, tm::Word v) override
            {
                c.unsafe_store(v);
            }
            [[noreturn]] void retry() override
            {
                throw tm::TxAbortException{};
            }
        } tx;
        // Seed the bad-element queue and degrade those elements.
        for (uint64_t i = 0; i < initial_bad_; ++i) {
            const uint64_t e = rng.below(elements_);
            if (quality_[e].unsafe_load() < kQualityThreshold) continue;
            quality_[e].unsafe_store(rng.below(kQualityThreshold));
            heap_->push(tx, e);
        }
        refined_.store(0);
        cascaded_.store(0);
    }

    void
    worker(tm::TmRuntime& rt, unsigned tid, unsigned threads) override
    {
        (void)tid;
        (void)threads;
        Xoshiro256 rng(params_.seed ^ (0xfeed + tid));
        for (;;) {
            bool have = false;
            uint64_t element = 0;
            uint64_t cascades = 0;
            rt.execute([&](tm::Tx& tx) {
                cascades = 0;
                auto top = heap_->pop(tx);
                have = top.has_value();
                if (!have) return;
                element = *top;

                // The element may have been fixed by an overlapping
                // earlier refinement.
                const uint64_t q = tx.load(quality_[element]);
                if (q >= kQualityThreshold) return;

                // Read the cavity, fix the element, perturb neighbours;
                // a perturbed neighbour that drops below the threshold
                // becomes new work (cascade).
                const uint64_t lo =
                    element > kCavity ? element - kCavity : 0;
                const uint64_t hi =
                    std::min(element + kCavity, elements_ - 1);
                tx.store(quality_[element],
                         kQualityThreshold + 50 + element % 50);
                for (uint64_t n = lo; n <= hi; ++n) {
                    if (n == element) continue;
                    const uint64_t nq = tx.load(quality_[n]);
                    if (nq < kQualityThreshold) continue; // already queued
                    // Deterministic perturbation of a few *higher*
                    // neighbours (upward-only propagation keeps the
                    // cascade finite — no refinement ping-pong).
                    if (n > element &&
                        (n * 2654435761u + element) % 16 == 0) {
                        if (heap_->push(tx, n)) {
                            tx.store(quality_[n], nq % kQualityThreshold);
                            ++cascades;
                        }
                    }
                }
            });
            if (!have) break;
            refined_.fetch_add(1);
            cascaded_.fetch_add(cascades);
        }
    }

    bool
    verify() const override
    {
        // Refinement must terminate with an empty heap and no element
        // below the quality threshold.
        if (heap_->unsafe_size() != 0) return false;
        for (uint64_t e = 0; e < elements_; ++e) {
            if (quality_[e].unsafe_load() < kQualityThreshold) {
                return false;
            }
        }
        return true;
    }

    CounterBag
    workload_stats() const override
    {
        CounterBag bag;
        bag.bump("refined", refined_.load());
        bag.bump("cascaded", cascaded_.load());
        return bag;
    }

  private:
    WorkloadParams params_;
    uint64_t elements_;
    uint64_t initial_bad_;

    std::unique_ptr<tm::TmCell[]> quality_;
    std::unique_ptr<TxHeap> heap_;
    std::atomic<uint64_t> refined_{0};
    std::atomic<uint64_t> cascaded_{0};
};

} // namespace

std::unique_ptr<Workload>
make_yada(const WorkloadParams& params)
{
    return std::make_unique<Yada>(params);
}

} // namespace rococo::stamp
