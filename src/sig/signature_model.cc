#include "sig/signature_model.h"

#include <cmath>

#include "common/check.h"

namespace rococo::sig {

double
partition_bit_set_probability(SignatureGeometry g, unsigned n)
{
    ROCOCO_CHECK(g.k > 0 && g.m % g.k == 0);
    const double bits = static_cast<double>(g.m) / g.k;
    // One hash per partition per element; each insert leaves a given bit
    // clear with probability (1 - 1/B).
    return 1.0 - std::pow(1.0 - 1.0 / bits, n);
}

double
query_false_positive(SignatureGeometry g, unsigned n)
{
    // A false positive needs the queried key's bit set in all k
    // partitions.
    return std::pow(partition_bit_set_probability(g, n), g.k);
}

double
intersection_false_overlap(SignatureGeometry g, unsigned n1, unsigned n2)
{
    const double bits = static_cast<double>(g.m) / g.k;
    const double p1 = partition_bit_set_probability(g, n1);
    const double p2 = partition_bit_set_probability(g, n2);
    // Independence approximation per bit: a given bit of the AND is set
    // with probability p1*p2; the AND is non-zero if any of the m bits
    // is.
    (void)bits;
    return 1.0 - std::pow(1.0 - p1 * p2, g.m);
}

double
intersection_false_overlap_all_partitions(SignatureGeometry g, unsigned n1,
                                          unsigned n2)
{
    const double bits = static_cast<double>(g.m) / g.k;
    const double p1 = partition_bit_set_probability(g, n1);
    const double p2 = partition_bit_set_probability(g, n2);
    // Each partition's AND is non-zero with probability
    // 1 - (1 - p1 p2)^B; all k partitions must be non-zero.
    const double per_partition = 1.0 - std::pow(1.0 - p1 * p2, bits);
    return std::pow(per_partition, g.k);
}

} // namespace rococo::sig
