/// @file
/// Approximated universal hashing with the multiply-shift scheme
/// (Dietzfelbinger et al.), the family the paper picks because a
/// signature can be computed with a handful of AVX instructions on the
/// CPU and a DSP multiplier on the FPGA (§5.2).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace rococo::sig {

/// A family of k independent multiply-shift hash functions, each mapping
/// a 64-bit key to a bucket in [0, buckets) where buckets is a power of
/// two.
class MultiplyShiftHasher
{
  public:
    /// @param k number of hash functions
    /// @param buckets range of each function; must be a power of two
    /// @param seed seed for drawing the odd multipliers
    MultiplyShiftHasher(unsigned k, uint64_t buckets, uint64_t seed = 42);

    unsigned k() const { return static_cast<unsigned>(multipliers_.size()); }
    uint64_t buckets() const { return uint64_t{1} << log_buckets_; }

    /// Hash @p key with function @p i.
    uint64_t
    hash(uint64_t key, unsigned i) const
    {
        // Multiply-shift: the top log2(buckets) bits of an odd-multiplier
        // product are 2-universal.
        return (multipliers_[i] * key) >> (64 - log_buckets_);
    }

    /// The k odd multipliers, for kernels that vectorize the family
    /// (sig/sliced_kernels.cc computes hash() lane-parallel).
    const uint64_t* multiplier_data() const { return multipliers_.data(); }

    /// The right-shift hash() applies: 64 - log2(buckets).
    unsigned shift() const { return 64 - log_buckets_; }

  private:
    std::vector<uint64_t> multipliers_;
    unsigned log_buckets_;
};

} // namespace rococo::sig
