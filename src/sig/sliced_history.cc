#include "sig/sliced_history.h"

#include <bit>

#include "common/check.h"

namespace rococo::sig {

SlicedSignatureHistory::SlicedSignatureHistory(
    size_t slots, std::shared_ptr<const SignatureConfig> config)
    : config_(std::move(config)), slots_(slots),
      mask_words_((slots + 63) / 64),
      columns_(static_cast<size_t>(config_->m()) * mask_words_, 0),
      rows_(slots * config_->words(), 0), kernel_(best_kernel()),
      match_fn_(kernel_fn(kernel_))
{
    ROCOCO_CHECK(slots_ > 0);
}

void
SlicedSignatureHistory::set_kernel(MatchKernel kernel)
{
    ROCOCO_CHECK(kernel_available(kernel));
    kernel_ = kernel;
    match_fn_ = kernel_fn(kernel);
}

void
SlicedSignatureHistory::insert(size_t slot, uint64_t key)
{
    ROCOCO_DCHECK(slot < slots_);
    uint64_t* row = rows_.data() + slot * config_->words();
    const uint64_t slot_mask = uint64_t{1} << (slot & 63);
    const size_t slot_word = slot >> 6;
    for (unsigned i = 0; i < config_->k(); ++i) {
        const uint64_t bit = config_->bit_index(key, i);
        row[bit >> 6] |= uint64_t{1} << (bit & 63);
        columns_[bit * mask_words_ + slot_word] |= slot_mask;
    }
}

void
SlicedSignatureHistory::clear_slot(size_t slot)
{
    ROCOCO_DCHECK(slot < slots_);
    uint64_t* row = rows_.data() + slot * config_->words();
    const uint64_t slot_mask = ~(uint64_t{1} << (slot & 63));
    const size_t slot_word = slot >> 6;
    for (unsigned w = 0; w < config_->words(); ++w) {
        uint64_t bits = row[w];
        while (bits != 0) {
            const unsigned b = static_cast<unsigned>(std::countr_zero(bits));
            bits &= bits - 1;
            const uint64_t bit = uint64_t{w} * 64 + b;
            columns_[bit * mask_words_ + slot_word] &= slot_mask;
        }
        row[w] = 0;
    }
}

bool
SlicedSignatureHistory::query(size_t slot, uint64_t key) const
{
    ROCOCO_DCHECK(slot < slots_);
    const uint64_t* row = rows_.data() + slot * config_->words();
    for (unsigned i = 0; i < config_->k(); ++i) {
        const uint64_t bit = config_->bit_index(key, i);
        if (!((row[bit >> 6] >> (bit & 63)) & 1)) return false;
    }
    return true;
}

void
SlicedSignatureHistory::match(uint64_t key, uint64_t* acc) const
{
    const unsigned k = config_->k();
    if (mask_words_ == 1) {
        // W <= 64: the whole match vector is one register — the k-way
        // column AND is the software rendering of the comparator array.
        uint64_t m = columns_[config_->bit_index(key, 0)];
        for (unsigned i = 1; m != 0 && i < k; ++i) {
            m &= columns_[config_->bit_index(key, i)];
        }
        acc[0] |= m;
        return;
    }
    for (size_t w = 0; w < mask_words_; ++w) {
        uint64_t m = columns_[config_->bit_index(key, 0) * mask_words_ + w];
        for (unsigned i = 1; m != 0 && i < k; ++i) {
            m &= columns_[config_->bit_index(key, i) * mask_words_ + w];
        }
        acc[w] |= m;
    }
}

void
SlicedSignatureHistory::match_any(std::span<const uint64_t> keys,
                                  uint64_t* acc) const
{
    // The view is rebuilt per call (six scalar stores — noise next to
    // the gathers) so moves/copies of the history can never leave a
    // kernel reading a stale columns pointer.
    match_fn_(view(), keys.data(), keys.size(), acc);
}

} // namespace rococo::sig
