#include "sig/hash.h"

#include <bit>

#include "common/check.h"

namespace rococo::sig {

MultiplyShiftHasher::MultiplyShiftHasher(unsigned k, uint64_t buckets,
                                         uint64_t seed)
{
    ROCOCO_CHECK(k > 0);
    ROCOCO_CHECK(buckets >= 2 && std::has_single_bit(buckets));
    log_buckets_ = static_cast<unsigned>(std::countr_zero(buckets));

    Xoshiro256 rng(seed);
    multipliers_.reserve(k);
    for (unsigned i = 0; i < k; ++i) {
        multipliers_.push_back(rng() | 1); // multiplier must be odd
    }
}

} // namespace rococo::sig
