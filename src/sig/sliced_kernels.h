/// @file
/// Explicit SIMD kernels for the bit-sliced column-AND match — the inner
/// loop of SlicedSignatureHistory::match_any and therefore of every
/// detector classification.
///
/// The scalar walk does, per address, k dependent column loads ANDed one
/// word at a time. The comparator array the RTL wires up has no such
/// serialization, and neither does the data layout here: for W <= 64 the
/// whole match vector is one 64-bit word, so a 256-bit (AVX2) or 512-bit
/// (AVX-512) register holds the match vectors of 4 or 8 *addresses* at
/// once — the multiply-shift hash is computed vectorially (the paper
/// picked that family precisely because "a signature can be computed
/// with a handful of AVX instructions", §5.2), the k columns are
/// gathered per lane, and one AND chain classifies the whole batch. For
/// W > 64 the kernels instead AND 4/8 column *words* per op for a single
/// address.
///
/// Kernels are selected at runtime from cpuid: every kernel compiled
/// into the binary (per-function `target` attributes, no global -m
/// flags; the ROCOCO_NATIVE preset stays the opt-in for -march=native
/// codegen of everything else) is listed by compiled_kernels(), and the
/// subset this CPU can execute by runtime_kernels(). The scalar kernel
/// is always present and is the oracle every SIMD kernel is fuzzed
/// against bit for bit (tests/detector_equivalence_test.cc).
///
/// Equivalence note: the scalar path early-exits the AND chain as soon
/// as a word goes to zero; the SIMD kernels only when *all* lanes die.
/// The results are still bit-identical — an all-zero lane stays zero
/// under further ANDs — so early-exit asymmetry is unobservable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace rococo::sig {

/// Borrowed, trivially-copyable view of one SlicedSignatureHistory
/// plane — everything a kernel needs, no pointer back into the class.
struct SlicedView {
    /// Column-major occupancy bits: columns[bit * mask_words + w].
    const uint64_t* columns;
    /// Words per occupancy column (== words per match accumulator).
    size_t mask_words;
    /// Hash functions / signature partitions.
    unsigned k;
    /// Bits per partition: bit_index(key, i) lives in
    /// [i * partition_bits, (i+1) * partition_bits).
    unsigned partition_bits;
    /// Multiply-shift right-shift amount: 64 - log2(partition_bits).
    unsigned hash_shift;
    /// The k odd multipliers of the hash family.
    const uint64_t* multipliers;
};

enum class MatchKernel : uint8_t {
    kScalar = 0, ///< portable word-at-a-time walk (the oracle)
    kAvx2 = 1,   ///< 256-bit: 4 addresses (W<=64) / 4 column words per op
    kAvx512 = 2, ///< 512-bit: 8 addresses (W<=64) / 8 column words per op
};

/// acc |= OR over keys of (AND over i<k of column[bit_index(key, i)]).
using MatchAnyFn = void (*)(const SlicedView& view, const uint64_t* keys,
                            size_t count, uint64_t* acc);

/// Fused two-plane classification — the detector's whole match phase in
/// one call:
///
///     rd |= OR over reads  of match(write_plane, read)
///     wr |= OR over writes of match(write_plane, write)
///     wr |= OR over writes of match(read_plane,  write)
///
/// Both planes share one hash family, so each address is hashed exactly
/// once (the unfused path hashes every write twice), and for W <= 64
/// the wide kernels pack reads and writes into the *same* register
/// batch — the common 4-read/4-write request fills all eight AVX-512
/// lanes instead of running three half-empty passes. Decision-identical
/// to three match_any calls by construction (same loads, same ANDs).
using ClassifyFn = void (*)(const SlicedView& read_plane,
                            const SlicedView& write_plane,
                            const uint64_t* reads, size_t read_count,
                            const uint64_t* writes, size_t write_count,
                            uint64_t* rd, uint64_t* wr);

const char* to_string(MatchKernel kernel);

/// Kernels compiled into this binary, scalar first. AVX kernels are
/// compiled whenever the compiler supports per-function target
/// attributes on x86-64, independent of the global -march flags.
std::span<const MatchKernel> compiled_kernels();

/// The compiled kernels this CPU can actually execute (cpuid-checked),
/// scalar first. What the equivalence fuzz iterates.
std::span<const MatchKernel> runtime_kernels();

/// True iff @p kernel is compiled in and executable on this CPU.
bool kernel_available(MatchKernel kernel);

/// The widest available kernel — what SlicedSignatureHistory picks at
/// construction.
MatchKernel best_kernel();

/// The dispatch-table entry for an *available* kernel (check
/// kernel_available first; asking for an unavailable kernel returns the
/// scalar function).
MatchAnyFn kernel_fn(MatchKernel kernel);

/// The fused two-plane entry for an *available* kernel; unavailable
/// kernels fall back to the scalar function.
ClassifyFn classify_kernel_fn(MatchKernel kernel);

} // namespace rococo::sig
