/// @file
/// Bit-sliced (column-major) signature history — the software transpose
/// of the Detector's comparator array (Fig. 5, left).
///
/// The row-major view keeps one m-bit bloom signature per window slot
/// and answers "which slots may contain address a?" by querying W
/// signatures one after another: O(W * k) dependent loads. The hardware
/// does the opposite: address a is hashed once, and the k resulting
/// signature bit positions are compared against *all* W slots
/// simultaneously by wired comparators. This class is that layout in
/// software: for each of the m signature bit positions it keeps a W-bit
/// *occupancy column* (which slots have that bit set), so the W-wide
/// match vector for one address is
///
///     match(a) = AND over i in [0,k) of column[bit_index(a, i)]
///
/// — k word loads and k-1 ANDs per address for W <= 64, independent of
/// the window size, exactly the comparator tree the RTL wires up.
///
/// Both views are maintained: the row image (one signature per slot) is
/// what eviction iterates (clear only the bits the departing slot set)
/// and what the scalar oracle queries, so the bit-sliced and row-major
/// answers are provably identical bit for bit
/// (tests/detector_equivalence_test.cc).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "sig/bloom_signature.h"
#include "sig/sliced_kernels.h"

namespace rococo::sig {

/// One plane (read or write signatures) of the detector history, stored
/// column-major with a row-major shadow.
class SlicedSignatureHistory
{
  public:
    /// @param slots window size W (columns are ceil(W/64) words wide)
    /// @param config signature geometry shared with the CPU side
    SlicedSignatureHistory(size_t slots,
                           std::shared_ptr<const SignatureConfig> config);

    size_t slots() const { return slots_; }

    /// Words per occupancy column (== words per match accumulator).
    size_t mask_words() const { return mask_words_; }

    /// Insert @p key into slot @p slot's signature: sets the slot bit in
    /// k columns and the k signature bits in the slot's row image.
    void insert(size_t slot, uint64_t key);

    /// Evict slot @p slot: walks the slot's row image and clears the
    /// slot bit only in the columns that slot actually set — O(popcount)
    /// instead of O(m).
    void clear_slot(size_t slot);

    /// Row-major may-contain query (the scalar oracle): true iff all k
    /// signature bits for @p key are set in @p slot's row image.
    bool query(size_t slot, uint64_t key) const;

    /// acc |= match(key): OR the W-bit column-AND match vector of
    /// @p key into @p acc (mask_words() words).
    void match(uint64_t key, uint64_t* acc) const;

    /// acc |= OR over keys of match(key). Runs the selected SIMD kernel
    /// (sig/sliced_kernels.h); defaults to the widest one this CPU
    /// supports.
    void match_any(std::span<const uint64_t> keys, uint64_t* acc) const;

    /// Force a specific match kernel (tests, benchmarks). Checks the
    /// kernel is compiled in and executable on this CPU.
    void set_kernel(MatchKernel kernel);

    MatchKernel kernel() const { return kernel_; }

    /// Borrowed kernel view of this plane (valid while the history
    /// lives and is not reassigned) — what the fused two-plane
    /// classification kernels consume (sig/sliced_kernels.h).
    SlicedView
    view() const
    {
        return {columns_.data(),
                mask_words_,
                config_->k(),
                config_->partition_bits(),
                config_->hasher().shift(),
                config_->hasher().multiplier_data()};
    }

    /// Raw word @p w of the occupancy column for signature bit @p bit
    /// (diagnostics / tests).
    uint64_t
    column_word(size_t bit, size_t w) const
    {
        return columns_[bit * mask_words_ + w];
    }

  private:
    std::shared_ptr<const SignatureConfig> config_;
    size_t slots_;
    size_t mask_words_;
    /// Column-major: columns_[bit * mask_words_ + w] holds slots
    /// [64w, 64w+63] of signature bit position `bit`.
    std::vector<uint64_t> columns_;
    /// Row-major shadow: rows_[slot * config.words() + w] is word w of
    /// slot's signature — what BloomSignature::words() would hold.
    std::vector<uint64_t> rows_;
    MatchKernel kernel_;
    MatchAnyFn match_fn_;
};

} // namespace rococo::sig
