#include "sig/sliced_kernels.h"

// The AVX kernels are compiled with per-function `target` attributes so
// a generic -march build still carries them; only the cpuid dispatch
// decides whether they run. That needs GCC/Clang on x86-64.
#if defined(__x86_64__) && defined(__GNUC__)
#define ROCOCO_SIMD_X86 1
#include <immintrin.h>
// GCC 12's AVX-512 intrinsic headers trip -Wmaybe-uninitialized on
// their _mm512_undefined_* internals once inlined; the warning is about
// the header's own deliberate "start from garbage" idiom, not this
// code.
#if !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
#else
#define ROCOCO_SIMD_X86 0
#endif

namespace rococo::sig {

namespace {

inline uint64_t
hash_bit(const SlicedView& v, uint64_t key, unsigned i)
{
    return uint64_t{i} * v.partition_bits +
           ((v.multipliers[i] * key) >> v.hash_shift);
}

/// Hash functions beyond this need a heap-sized base-pointer array in
/// the wide-column path; every real geometry is k <= 8, so fall back to
/// the scalar walk instead.
constexpr unsigned kMaxK = 16;

void
match_any_scalar(const SlicedView& v, const uint64_t* keys, size_t count,
                 uint64_t* acc)
{
    if (v.mask_words == 1) {
        uint64_t out = 0;
        for (size_t j = 0; j < count; ++j) {
            const uint64_t key = keys[j];
            uint64_t m = v.columns[hash_bit(v, key, 0)];
            for (unsigned i = 1; m != 0 && i < v.k; ++i) {
                m &= v.columns[hash_bit(v, key, i)];
            }
            out |= m;
        }
        acc[0] |= out;
        return;
    }
    for (size_t j = 0; j < count; ++j) {
        const uint64_t key = keys[j];
        for (size_t w = 0; w < v.mask_words; ++w) {
            uint64_t m = v.columns[hash_bit(v, key, 0) * v.mask_words + w];
            for (unsigned i = 1; m != 0 && i < v.k; ++i) {
                m &= v.columns[hash_bit(v, key, i) * v.mask_words + w];
            }
            acc[w] |= m;
        }
    }
}

void
classify_scalar(const SlicedView& read_plane, const SlicedView& write_plane,
                const uint64_t* reads, size_t read_count,
                const uint64_t* writes, size_t write_count, uint64_t* rd,
                uint64_t* wr)
{
    match_any_scalar(write_plane, reads, read_count, rd);
    match_any_scalar(write_plane, writes, write_count, wr);
    match_any_scalar(read_plane, writes, write_count, wr);
}

#if ROCOCO_SIMD_X86

/// 64x64 -> low 64 multiply per lane from the 32-bit partial products
/// AVX2 offers: lo*lo + ((hi*lo + lo*hi) << 32).
__attribute__((target("avx2"))) inline __m256i
mullo64_avx2(__m256i a, __m256i b)
{
    const __m256i lo = _mm256_mul_epu32(a, b);
    const __m256i cross =
        _mm256_add_epi64(_mm256_mul_epu32(_mm256_srli_epi64(a, 32), b),
                         _mm256_mul_epu32(a, _mm256_srli_epi64(b, 32)));
    return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

__attribute__((target("avx2"))) void
match_any_avx2(const SlicedView& v, const uint64_t* keys, size_t count,
               uint64_t* acc)
{
    const long long* cols = reinterpret_cast<const long long*>(v.columns);
    if (v.mask_words == 1) {
        // W <= 64: four addresses per pass — vector multiply-shift hash,
        // per-lane column gather, one AND chain for the whole batch.
        // Tail batches mask the dead lanes (maskload yields key 0, which
        // still hashes in range; the masked gather leaves the lane 0, so
        // it contributes nothing to the OR).
        uint64_t out = 0;
        const __m128i shift = _mm_cvtsi32_si128(static_cast<int>(v.hash_shift));
        const __m256i lane_ids = _mm256_set_epi64x(3, 2, 1, 0);
        for (size_t j = 0; j < count; j += 4) {
            const size_t rem = count - j;
            __m256i lanemask, keys4;
            if (rem >= 4) {
                lanemask = _mm256_set1_epi64x(-1);
                keys4 = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i*>(keys + j));
            } else {
                lanemask = _mm256_cmpgt_epi64(
                    _mm256_set1_epi64x(static_cast<long long>(rem)), lane_ids);
                keys4 = _mm256_maskload_epi64(
                    reinterpret_cast<const long long*>(keys + j), lanemask);
            }
            __m256i idx = _mm256_srl_epi64(
                mullo64_avx2(keys4, _mm256_set1_epi64x(static_cast<long long>(
                                        v.multipliers[0]))),
                shift);
            __m256i m = _mm256_mask_i64gather_epi64(_mm256_setzero_si256(),
                                                    cols, idx, lanemask, 8);
            for (unsigned i = 1; i < v.k; ++i) {
                if (_mm256_testz_si256(m, m)) break;
                idx = _mm256_srl_epi64(
                    mullo64_avx2(keys4,
                                 _mm256_set1_epi64x(static_cast<long long>(
                                     v.multipliers[i]))),
                    shift);
                idx = _mm256_add_epi64(
                    idx, _mm256_set1_epi64x(static_cast<long long>(
                             uint64_t{i} * v.partition_bits)));
                m = _mm256_and_si256(
                    m, _mm256_mask_i64gather_epi64(_mm256_setzero_si256(),
                                                   cols, idx, lanemask, 8));
            }
            const __m128i o = _mm_or_si128(_mm256_castsi256_si128(m),
                                           _mm256_extracti128_si256(m, 1));
            out |= static_cast<uint64_t>(_mm_cvtsi128_si64(o)) |
                   static_cast<uint64_t>(_mm_extract_epi64(o, 1));
        }
        acc[0] |= out;
        return;
    }
    // W > 64: per address, AND the k column ranges four words per op.
    // Columns narrower than the vector (W <= 256) gain nothing — the
    // scalar word loop already fits in registers.
    if (v.k > kMaxK || v.mask_words < 4) {
        match_any_scalar(v, keys, count, acc);
        return;
    }
    const uint64_t* bases[kMaxK];
    for (size_t j = 0; j < count; ++j) {
        const uint64_t key = keys[j];
        for (unsigned i = 0; i < v.k; ++i) {
            bases[i] = v.columns + hash_bit(v, key, i) * v.mask_words;
        }
        size_t w = 0;
        for (; w + 4 <= v.mask_words; w += 4) {
            __m256i m = _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(bases[0] + w));
            for (unsigned i = 1; i < v.k; ++i) {
                if (_mm256_testz_si256(m, m)) break;
                m = _mm256_and_si256(
                    m, _mm256_loadu_si256(
                           reinterpret_cast<const __m256i*>(bases[i] + w)));
            }
            __m256i* a = reinterpret_cast<__m256i*>(acc + w);
            _mm256_storeu_si256(a,
                                _mm256_or_si256(_mm256_loadu_si256(a), m));
        }
        for (; w < v.mask_words; ++w) {
            uint64_t m = bases[0][w];
            for (unsigned i = 1; m != 0 && i < v.k; ++i) m &= bases[i][w];
            acc[w] |= m;
        }
    }
}

__attribute__((target("avx2"))) void
classify_avx2(const SlicedView& read_plane, const SlicedView& write_plane,
              const uint64_t* reads, size_t read_count,
              const uint64_t* writes, size_t write_count, uint64_t* rd,
              uint64_t* wr)
{
    const SlicedView& v = write_plane; // shared geometry; columns differ
    if (v.mask_words != 1 || v.k > kMaxK) {
        match_any_avx2(write_plane, reads, read_count, rd);
        match_any_avx2(write_plane, writes, write_count, wr);
        match_any_avx2(read_plane, writes, write_count, wr);
        return;
    }
    const long long* wcols =
        reinterpret_cast<const long long*>(write_plane.columns);
    const long long* rcols =
        reinterpret_cast<const long long*>(read_plane.columns);
    const __m128i shift = _mm_cvtsi32_si128(static_cast<int>(v.hash_shift));
    const __m256i lane_ids = _mm256_set_epi64x(3, 2, 1, 0);
    uint64_t rd_out = 0;
    uint64_t wr_out = 0;

    // Reads hit only the write plane: the single-plane chain. Full
    // batches take unmasked loads/gathers; only tails pay for masking.
    // No early exit inside a chain — with k small, the saved gathers
    // rarely beat the branch mispredicts (lanes that die just AND to
    // zero and drop out of the final OR).
    for (size_t j = 0; j < read_count; j += 4) {
        const size_t rem = read_count - j;
        const bool full = rem >= 4;
        __m256i lanemask, keys4;
        if (full) {
            lanemask = _mm256_set1_epi64x(-1);
            keys4 = _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(reads + j));
        } else {
            lanemask = _mm256_cmpgt_epi64(
                _mm256_set1_epi64x(static_cast<long long>(rem)), lane_ids);
            keys4 = _mm256_maskload_epi64(
                reinterpret_cast<const long long*>(reads + j), lanemask);
        }
        __m256i m = _mm256_setzero_si256();
        for (unsigned i = 0; i < v.k; ++i) {
            __m256i idx = _mm256_srl_epi64(
                mullo64_avx2(keys4, _mm256_set1_epi64x(static_cast<long long>(
                                        v.multipliers[i]))),
                shift);
            idx = _mm256_add_epi64(idx,
                                   _mm256_set1_epi64x(static_cast<long long>(
                                       uint64_t{i} * v.partition_bits)));
            const __m256i col =
                full ? _mm256_i64gather_epi64(wcols, idx, 8)
                     : _mm256_mask_i64gather_epi64(_mm256_setzero_si256(),
                                                   wcols, idx, lanemask, 8);
            m = i == 0 ? col : _mm256_and_si256(m, col);
        }
        __m128i o = _mm_or_si128(_mm256_castsi256_si128(m),
                                 _mm256_extracti128_si256(m, 1));
        rd_out |= static_cast<uint64_t>(_mm_cvtsi128_si64(o)) |
                  static_cast<uint64_t>(_mm_extract_epi64(o, 1));
    }

    // Writes hit both planes: hash once, run both chains off the same
    // index vectors (the two gather streams interleave and hide each
    // other's latency).
    for (size_t j = 0; j < write_count; j += 4) {
        const size_t rem = write_count - j;
        const bool full = rem >= 4;
        __m256i lanemask, keys4;
        if (full) {
            lanemask = _mm256_set1_epi64x(-1);
            keys4 = _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(writes + j));
        } else {
            lanemask = _mm256_cmpgt_epi64(
                _mm256_set1_epi64x(static_cast<long long>(rem)), lane_ids);
            keys4 = _mm256_maskload_epi64(
                reinterpret_cast<const long long*>(writes + j), lanemask);
        }
        __m256i m = _mm256_setzero_si256();
        __m256i m2 = _mm256_setzero_si256();
        for (unsigned i = 0; i < v.k; ++i) {
            __m256i idx = _mm256_srl_epi64(
                mullo64_avx2(keys4, _mm256_set1_epi64x(static_cast<long long>(
                                        v.multipliers[i]))),
                shift);
            idx = _mm256_add_epi64(idx,
                                   _mm256_set1_epi64x(static_cast<long long>(
                                       uint64_t{i} * v.partition_bits)));
            __m256i wcol, rcol;
            if (full) {
                wcol = _mm256_i64gather_epi64(wcols, idx, 8);
                rcol = _mm256_i64gather_epi64(rcols, idx, 8);
            } else {
                wcol = _mm256_mask_i64gather_epi64(_mm256_setzero_si256(),
                                                   wcols, idx, lanemask, 8);
                rcol = _mm256_mask_i64gather_epi64(_mm256_setzero_si256(),
                                                   rcols, idx, lanemask, 8);
            }
            m = i == 0 ? wcol : _mm256_and_si256(m, wcol);
            m2 = i == 0 ? rcol : _mm256_and_si256(m2, rcol);
        }
        m = _mm256_or_si256(m, m2);
        __m128i o = _mm_or_si128(_mm256_castsi256_si128(m),
                                 _mm256_extracti128_si256(m, 1));
        wr_out |= static_cast<uint64_t>(_mm_cvtsi128_si64(o)) |
                  static_cast<uint64_t>(_mm_extract_epi64(o, 1));
    }
    rd[0] |= rd_out;
    wr[0] |= wr_out;
}

__attribute__((target("avx512f,avx512dq"))) void
match_any_avx512(const SlicedView& v, const uint64_t* keys, size_t count,
                 uint64_t* acc)
{
    if (v.mask_words == 1) {
        // W <= 64: eight addresses per pass. Lane masks make partial
        // batches first-class, so the common 4-read/4-write request
        // still takes the vector path instead of a scalar tail.
        uint64_t out = 0;
        const __m128i shift = _mm_cvtsi32_si128(static_cast<int>(v.hash_shift));
        for (size_t j = 0; j < count; j += 8) {
            const size_t rem = count - j;
            const __mmask8 lanemask =
                rem >= 8 ? static_cast<__mmask8>(0xFF)
                         : static_cast<__mmask8>((1u << rem) - 1);
            const __m512i keys8 = _mm512_maskz_loadu_epi64(lanemask, keys + j);
            __m512i idx = _mm512_srl_epi64(
                _mm512_mullo_epi64(keys8, _mm512_set1_epi64(static_cast<long long>(
                                              v.multipliers[0]))),
                shift);
            __m512i m = _mm512_mask_i64gather_epi64(
                _mm512_setzero_si512(), lanemask, idx, v.columns, 8);
            for (unsigned i = 1; i < v.k; ++i) {
                if (_mm512_test_epi64_mask(m, m) == 0) break;
                idx = _mm512_srl_epi64(
                    _mm512_mullo_epi64(keys8,
                                       _mm512_set1_epi64(static_cast<long long>(
                                           v.multipliers[i]))),
                    shift);
                idx = _mm512_add_epi64(
                    idx, _mm512_set1_epi64(static_cast<long long>(
                             uint64_t{i} * v.partition_bits)));
                m = _mm512_and_si512(
                    m, _mm512_mask_i64gather_epi64(_mm512_setzero_si512(),
                                                   lanemask, idx, v.columns,
                                                   8));
            }
            out |= static_cast<uint64_t>(_mm512_reduce_or_epi64(m));
        }
        acc[0] |= out;
        return;
    }
    // W > 64: per address, AND the k column ranges eight words per op;
    // the word tail runs lane-masked rather than scalar. Columns
    // narrower than half a vector stay scalar.
    if (v.k > kMaxK || v.mask_words < 4) {
        match_any_scalar(v, keys, count, acc);
        return;
    }
    const uint64_t* bases[kMaxK];
    for (size_t j = 0; j < count; ++j) {
        const uint64_t key = keys[j];
        for (unsigned i = 0; i < v.k; ++i) {
            bases[i] = v.columns + hash_bit(v, key, i) * v.mask_words;
        }
        size_t w = 0;
        for (; w + 8 <= v.mask_words; w += 8) {
            __m512i m = _mm512_loadu_si512(bases[0] + w);
            for (unsigned i = 1; i < v.k; ++i) {
                if (_mm512_test_epi64_mask(m, m) == 0) break;
                m = _mm512_and_si512(m, _mm512_loadu_si512(bases[i] + w));
            }
            _mm512_storeu_si512(acc + w,
                                _mm512_or_si512(_mm512_loadu_si512(acc + w),
                                                m));
        }
        if (w < v.mask_words) {
            const __mmask8 tail = static_cast<__mmask8>(
                (1u << (v.mask_words - w)) - 1);
            __m512i m = _mm512_maskz_loadu_epi64(tail, bases[0] + w);
            for (unsigned i = 1; i < v.k; ++i) {
                if (_mm512_test_epi64_mask(m, m) == 0) break;
                m = _mm512_and_si512(
                    m, _mm512_maskz_loadu_epi64(tail, bases[i] + w));
            }
            const __m512i a = _mm512_maskz_loadu_epi64(tail, acc + w);
            _mm512_mask_storeu_epi64(acc + w, tail, _mm512_or_si512(a, m));
        }
    }
}

__attribute__((target("avx512f,avx512dq"))) void
classify_avx512(const SlicedView& read_plane, const SlicedView& write_plane,
                const uint64_t* reads, size_t read_count,
                const uint64_t* writes, size_t write_count, uint64_t* rd,
                uint64_t* wr)
{
    const SlicedView& v = write_plane; // shared geometry; columns differ
    if (v.mask_words != 1 || v.k > kMaxK) {
        match_any_avx512(write_plane, reads, read_count, rd);
        match_any_avx512(write_plane, writes, write_count, wr);
        match_any_avx512(read_plane, writes, write_count, wr);
        return;
    }
    const __m128i shift = _mm_cvtsi32_si128(static_cast<int>(v.hash_shift));
    uint64_t rd_out = 0;
    uint64_t wr_out = 0;
    __m512i idxs[kMaxK];

    if (read_count + write_count <= 8) {
        // The whole request in one register batch: reads in the low
        // lanes, writes above them, hashed together; the write-plane
        // chain classifies every address at once and the lane split
        // routes matches to rd vs wr.
        const size_t total = read_count + write_count;
        if (total == 0) return;
        uint64_t buf[8];
        for (size_t j = 0; j < read_count; ++j) buf[j] = reads[j];
        for (size_t j = 0; j < write_count; ++j) {
            buf[read_count + j] = writes[j];
        }
        const __mmask8 all = static_cast<__mmask8>((1u << total) - 1);
        const __mmask8 rmask = static_cast<__mmask8>((1u << read_count) - 1);
        const __mmask8 wmask = static_cast<__mmask8>(all ^ rmask);
        const __m512i keys8 = _mm512_maskz_loadu_epi64(all, buf);
        // Both plane chains run branchless off the same index vectors
        // (dead lanes AND to zero; the masked reduces drop them), the
        // two gather streams interleaved to hide latency.
        __m512i m = _mm512_setzero_si512();
        __m512i m2 = _mm512_setzero_si512();
        for (unsigned i = 0; i < v.k; ++i) {
            __m512i idx = _mm512_srl_epi64(
                _mm512_mullo_epi64(keys8,
                                   _mm512_set1_epi64(static_cast<long long>(
                                       v.multipliers[i]))),
                shift);
            idx = _mm512_add_epi64(idx,
                                   _mm512_set1_epi64(static_cast<long long>(
                                       uint64_t{i} * v.partition_bits)));
            const __m512i wcol = _mm512_mask_i64gather_epi64(
                _mm512_setzero_si512(), all, idx, write_plane.columns, 8);
            const __m512i rcol = _mm512_mask_i64gather_epi64(
                _mm512_setzero_si512(), wmask, idx, read_plane.columns, 8);
            m = i == 0 ? wcol : _mm512_and_si512(m, wcol);
            m2 = i == 0 ? rcol : _mm512_and_si512(m2, rcol);
        }
        rd_out = static_cast<uint64_t>(
            _mm512_reduce_or_epi64(_mm512_maskz_mov_epi64(rmask, m)));
        wr_out = static_cast<uint64_t>(_mm512_reduce_or_epi64(
            _mm512_or_si512(_mm512_maskz_mov_epi64(wmask, m), m2)));
        rd[0] |= rd_out;
        wr[0] |= wr_out;
        return;
    }

    // Oversized request: reads through the single-plane path, writes in
    // batches that hash once and run both plane chains.
    match_any_avx512(write_plane, reads, read_count, rd);
    for (size_t j = 0; j < write_count; j += 8) {
        const size_t rem = write_count - j;
        const __mmask8 lanemask = rem >= 8
                                      ? static_cast<__mmask8>(0xFF)
                                      : static_cast<__mmask8>((1u << rem) - 1);
        const __m512i keys8 = _mm512_maskz_loadu_epi64(lanemask, writes + j);
        for (unsigned i = 0; i < v.k; ++i) {
            const __m512i idx = _mm512_srl_epi64(
                _mm512_mullo_epi64(keys8,
                                   _mm512_set1_epi64(static_cast<long long>(
                                       v.multipliers[i]))),
                shift);
            idxs[i] = _mm512_add_epi64(
                idx, _mm512_set1_epi64(static_cast<long long>(
                         uint64_t{i} * v.partition_bits)));
        }
        __m512i m = _mm512_mask_i64gather_epi64(_mm512_setzero_si512(),
                                                lanemask, idxs[0],
                                                write_plane.columns, 8);
        for (unsigned i = 1; i < v.k; ++i) {
            if (_mm512_test_epi64_mask(m, m) == 0) break;
            m = _mm512_and_si512(
                m, _mm512_mask_i64gather_epi64(_mm512_setzero_si512(),
                                               lanemask, idxs[i],
                                               write_plane.columns, 8));
        }
        __m512i m2 = _mm512_mask_i64gather_epi64(_mm512_setzero_si512(),
                                                 lanemask, idxs[0],
                                                 read_plane.columns, 8);
        for (unsigned i = 1; i < v.k; ++i) {
            if (_mm512_test_epi64_mask(m2, m2) == 0) break;
            m2 = _mm512_and_si512(
                m2, _mm512_mask_i64gather_epi64(_mm512_setzero_si512(),
                                                lanemask, idxs[i],
                                                read_plane.columns, 8));
        }
        wr_out |= static_cast<uint64_t>(
            _mm512_reduce_or_epi64(_mm512_or_si512(m, m2)));
    }
    wr[0] |= wr_out;
}

#endif // ROCOCO_SIMD_X86

constexpr MatchKernel kCompiled[] = {
    MatchKernel::kScalar,
#if ROCOCO_SIMD_X86
    MatchKernel::kAvx2,
    MatchKernel::kAvx512,
#endif
};

bool
cpu_supports(MatchKernel kernel)
{
    switch (kernel) {
    case MatchKernel::kScalar:
        return true;
#if ROCOCO_SIMD_X86
    case MatchKernel::kAvx2:
        return __builtin_cpu_supports("avx2") != 0;
    case MatchKernel::kAvx512:
        return __builtin_cpu_supports("avx512f") != 0 &&
               __builtin_cpu_supports("avx512dq") != 0;
#endif
    default:
        return false;
    }
}

struct RuntimeKernels {
    MatchKernel list[std::size(kCompiled)];
    size_t count = 0;
    RuntimeKernels()
    {
        for (MatchKernel kernel : kCompiled) {
            if (cpu_supports(kernel)) list[count++] = kernel;
        }
    }
};

const RuntimeKernels&
runtime()
{
    static const RuntimeKernels kernels;
    return kernels;
}

} // namespace

const char*
to_string(MatchKernel kernel)
{
    switch (kernel) {
    case MatchKernel::kScalar:
        return "scalar";
    case MatchKernel::kAvx2:
        return "avx2";
    case MatchKernel::kAvx512:
        return "avx512";
    }
    return "unknown";
}

std::span<const MatchKernel>
compiled_kernels()
{
    return {kCompiled, std::size(kCompiled)};
}

std::span<const MatchKernel>
runtime_kernels()
{
    const RuntimeKernels& kernels = runtime();
    return {kernels.list, kernels.count};
}

bool
kernel_available(MatchKernel kernel)
{
    for (MatchKernel compiled : kCompiled) {
        if (compiled == kernel) return cpu_supports(kernel);
    }
    return false;
}

MatchKernel
best_kernel()
{
    const RuntimeKernels& kernels = runtime();
    return kernels.list[kernels.count - 1];
}

MatchAnyFn
kernel_fn(MatchKernel kernel)
{
    if (!kernel_available(kernel)) return &match_any_scalar;
    switch (kernel) {
#if ROCOCO_SIMD_X86
    case MatchKernel::kAvx2:
        return &match_any_avx2;
    case MatchKernel::kAvx512:
        return &match_any_avx512;
#endif
    default:
        return &match_any_scalar;
    }
}

ClassifyFn
classify_kernel_fn(MatchKernel kernel)
{
    if (!kernel_available(kernel)) return &classify_scalar;
    switch (kernel) {
#if ROCOCO_SIMD_X86
    case MatchKernel::kAvx2:
        return &classify_avx2;
    case MatchKernel::kAvx512:
        return &classify_avx512;
#endif
    default:
        return &classify_scalar;
    }
}

} // namespace rococo::sig
