/// @file
/// Parallel (partitioned) bloom-filter signatures (Sanchez et al.), the
/// global metadata ROCoCoTM uses instead of per-location locks or
/// timestamps (§5.2).
///
/// A signature of m bits is split into k partitions of m/k bits; hash
/// function i sets one bit in partition i per inserted element. The type
/// supports the four operations the paper relies on: insertion,
/// membership query, set union and set intersection — all as bitwise
/// operations, which is what makes the scheme implementable both with
/// AVX on the CPU and as wired logic on the FPGA.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sig/hash.h"

namespace rococo::sig {

/// Geometry and hashing shared by all signatures of one TM instance.
///
/// Signatures are only comparable/intersectable when built from the same
/// config (same m, k and hash multipliers), so configs are shared by
/// const pointer.
class SignatureConfig
{
  public:
    /// @param m total signature bits (power of two, >= 64)
    /// @param k number of partitions / hash functions (divides m)
    /// @param seed hash-family seed
    SignatureConfig(unsigned m, unsigned k, uint64_t seed = 42);

    unsigned m() const { return m_; }
    unsigned k() const { return k_; }
    unsigned partition_bits() const { return m_ / k_; }
    unsigned words() const { return m_ / 64; }

    /// Global bit index (in [0, m)) element @p key sets in partition
    /// @p i.
    uint64_t
    bit_index(uint64_t key, unsigned i) const
    {
        return static_cast<uint64_t>(i) * partition_bits() +
               hasher_.hash(key, i);
    }

    /// The shared hash family (multipliers + shift), for SIMD kernels
    /// that recompute bit_index() lane-parallel.
    const MultiplyShiftHasher& hasher() const { return hasher_; }

  private:
    unsigned m_;
    unsigned k_;
    MultiplyShiftHasher hasher_;
};

/// A parallel bloom-filter signature over 64-bit keys (addresses).
class BloomSignature
{
  public:
    explicit BloomSignature(std::shared_ptr<const SignatureConfig> config);

    const SignatureConfig& config() const { return *config_; }

    /// Insert @p key into the represented set.
    void insert(uint64_t key);

    /// May-contain query: false means definitely absent.
    bool query(uint64_t key) const;

    /// True iff no bit is set (represents the empty set).
    bool empty() const;

    /// Remove all elements.
    void clear();

    /// this := this ∪ other.
    void unite(const BloomSignature& other);

    /// this := this ∪ raw word image (same geometry). Used when folding
    /// signatures published through atomic word arrays (tm/commit_log).
    void unite_raw(const uint64_t* raw_words, size_t count);

    /// True iff the bitwise AND is non-zero anywhere, the cheap
    /// intersection test used on the hot path. Disjoint sets can test
    /// true (false set-overlap, Fig. 7 (b)); a false result is exact.
    bool intersects(const BloomSignature& other) const;

    /// Stricter intersection test: every partition of the AND must be
    /// non-empty (a real common element sets one bit in each partition).
    /// Lower false-overlap rate at slightly higher cost.
    bool intersects_all_partitions(const BloomSignature& other) const;

    /// Number of set bits (diagnostics / model validation).
    unsigned popcount() const;

    /// Raw 64-bit words, little-endian bit order.
    const std::vector<uint64_t>& words() const { return words_; }

    bool operator==(const BloomSignature& other) const
    {
        return words_ == other.words_;
    }

  private:
    std::shared_ptr<const SignatureConfig> config_;
    std::vector<uint64_t> words_;
};

} // namespace rococo::sig
