/// @file
/// Analytic false-positivity model for parallel bloom-filter signatures,
/// following the probabilistic treatment of Jeffrey & Steffan
/// ("Understanding bloom filter intersection for lazy address-set
/// disambiguation", SPAA'11), which the paper uses to size ROCoCoTM's
/// signatures (Fig. 7, §5.2).
///
/// All formulas assume a partitioned filter with m total bits, k
/// partitions of B = m/k bits and one ideal hash per partition.
#pragma once

namespace rococo::sig {

/// Inputs of the model: signature geometry.
struct SignatureGeometry
{
    unsigned m; ///< total bits
    unsigned k; ///< partitions (hash functions)
};

/// Probability that a given bit of one partition is set after inserting
/// @p n distinct elements.
double partition_bit_set_probability(SignatureGeometry g, unsigned n);

/// False-positive probability of a membership query against a signature
/// holding @p n elements (queried key not in the set).
double query_false_positive(SignatureGeometry g, unsigned n);

/// False set-overlap probability of the any-bit intersection test
/// between signatures of two disjoint sets with @p n1 and @p n2
/// elements: P(bitwise AND != 0).
double intersection_false_overlap(SignatureGeometry g, unsigned n1,
                                  unsigned n2);

/// False set-overlap probability of the all-partitions intersection
/// test: P(every partition of the AND is non-zero).
double intersection_false_overlap_all_partitions(SignatureGeometry g,
                                                 unsigned n1, unsigned n2);

} // namespace rococo::sig
