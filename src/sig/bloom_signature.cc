#include "sig/bloom_signature.h"

#include <bit>

#include "common/check.h"

namespace rococo::sig {

SignatureConfig::SignatureConfig(unsigned m, unsigned k, uint64_t seed)
    : m_(m), k_(k), hasher_(k, m / k, seed)
{
    ROCOCO_CHECK(m >= 64 && std::has_single_bit(m));
    ROCOCO_CHECK(k >= 1 && m % k == 0);
    ROCOCO_CHECK(std::has_single_bit(m / k));
}

BloomSignature::BloomSignature(std::shared_ptr<const SignatureConfig> config)
    : config_(std::move(config)), words_(config_->words(), 0)
{
}

void
BloomSignature::insert(uint64_t key)
{
    for (unsigned i = 0; i < config_->k(); ++i) {
        const uint64_t bit = config_->bit_index(key, i);
        words_[bit >> 6] |= uint64_t{1} << (bit & 63);
    }
}

bool
BloomSignature::query(uint64_t key) const
{
    for (unsigned i = 0; i < config_->k(); ++i) {
        const uint64_t bit = config_->bit_index(key, i);
        if (!((words_[bit >> 6] >> (bit & 63)) & 1)) return false;
    }
    return true;
}

bool
BloomSignature::empty() const
{
    for (auto word : words_) {
        if (word != 0) return false;
    }
    return true;
}

void
BloomSignature::clear()
{
    for (auto& word : words_) word = 0;
}

void
BloomSignature::unite(const BloomSignature& other)
{
    ROCOCO_DCHECK(config_.get() == other.config_.get());
    for (size_t w = 0; w < words_.size(); ++w) words_[w] |= other.words_[w];
}

void
BloomSignature::unite_raw(const uint64_t* raw_words, size_t count)
{
    ROCOCO_DCHECK(count == words_.size());
    for (size_t w = 0; w < count; ++w) words_[w] |= raw_words[w];
}

bool
BloomSignature::intersects(const BloomSignature& other) const
{
    ROCOCO_DCHECK(config_.get() == other.config_.get());
    for (size_t w = 0; w < words_.size(); ++w) {
        if (words_[w] & other.words_[w]) return true;
    }
    return false;
}

bool
BloomSignature::intersects_all_partitions(const BloomSignature& other) const
{
    ROCOCO_DCHECK(config_.get() == other.config_.get());
    const unsigned words_per_partition = config_->partition_bits() / 64;
    if (words_per_partition == 0) {
        // Partitions smaller than a word: fall back to per-bit scan.
        const unsigned bits = config_->partition_bits();
        for (unsigned p = 0; p < config_->k(); ++p) {
            bool hit = false;
            for (unsigned b = 0; b < bits && !hit; ++b) {
                const uint64_t bit = static_cast<uint64_t>(p) * bits + b;
                const uint64_t mask = uint64_t{1} << (bit & 63);
                hit = (words_[bit >> 6] & other.words_[bit >> 6] & mask) != 0;
            }
            if (!hit) return false;
        }
        return true;
    }
    for (unsigned p = 0; p < config_->k(); ++p) {
        uint64_t acc = 0;
        for (unsigned w = 0; w < words_per_partition; ++w) {
            const size_t idx = static_cast<size_t>(p) * words_per_partition + w;
            acc |= words_[idx] & other.words_[idx];
        }
        if (acc == 0) return false;
    }
    return true;
}

unsigned
BloomSignature::popcount() const
{
    unsigned total = 0;
    for (auto word : words_) total += std::popcount(word);
    return total;
}

} // namespace rococo::sig
