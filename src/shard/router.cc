#include "shard/router.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <span>
#include <string>
#include <utility>

#include "common/check.h"
#include "obs/clock.h"

namespace rococo::shard {
namespace {

core::ValidationResult
make_result(core::Verdict verdict, uint64_t cid = 0)
{
    return {verdict, cid, core::abort_reason(verdict)};
}

/// Hot-key ranks exported as gauges per shard (the full table travels
/// through topk_json()).
constexpr size_t kTopKExportRanks = 8;

} // namespace

ShardRouter::ShardRouter(const ShardConfig& config)
    : config_(config), partitioner_(config.shards, config.partition_seed)
{
    ROCOCO_CHECK(config_.shards >= 1);
    shards_.reserve(config_.shards);
    for (uint32_t s = 0; s < config_.shards; ++s) {
        auto shard = std::make_unique<Shard>(config_.engine);
        const std::string prefix = "shard." + std::to_string(s);
        shard->validations = &registry_.counter(prefix + ".validations");
        shard->aborts = &registry_.counter(prefix + ".aborts");
        shard->conflict_victims =
            &registry_.counter(prefix + ".conflict.victims");
        shard->conflict_aggressors =
            &registry_.counter(prefix + ".conflict.aggressors");
        shards_.push_back(std::move(shard));
    }
    submitted_ = &registry_.counter("submitted");
    cross_ = &registry_.counter("shard.cross");
    total_ = &registry_.counter("shard.validations");
    for (size_t i = 0; i < core::kVerdictCount; ++i) {
        verdict_[i] = &registry_.counter(
            core::to_string(static_cast<core::Verdict>(i)));
    }
    route_ns_ = &registry_.histogram("shard.route_ns");
    coord_ns_ = &registry_.histogram("shard.coord_ns");
    conflict_attributed_ = &registry_.counter("shard.conflict.attributed");
    conflict_depth_ = &registry_.histogram("shard.conflict.depth");
}

ShardRouter::~ShardRouter() = default;

bool
ShardRouter::translate_snapshot(const Shard& shard, uint64_t g, uint64_t* out)
{
    const auto& tracked = shard.commit_globals;
    const uint64_t observed = tracked.rank(g);
    if (observed == 0 && shard.evicted > 0) {
        // Every tracked commit is unobserved and some commits left the
        // ring: we cannot prove the reader observed the evicted ones.
        return false;
    }
    // observed > 0 implies every evicted global number is below
    // tracked.front() < g, so all evicted commits were observed.
    *out = shard.evicted + observed;
    return true;
}

core::ValidationResult
ShardRouter::prepare_slice(Shard& shard, SubRequest& sub,
                           uint64_t global_snapshot, bool cross,
                           core::ValidationRequest* classified)
{
    uint64_t snapshot = 0;
    if (!translate_snapshot(shard, global_snapshot, &snapshot)) {
        if (!sub.offload.reads.empty()) {
            return make_result(core::Verdict::kWindowOverflow);
        }
        // The snapshot only decides how W_c ∩ R edges split into
        // forward/backward; with no reads the slice classifies the same
        // under any snapshot, so an in-window placeholder keeps the
        // write-only commit the single-engine deployment would allow.
        snapshot = shard.engine.window_start();
    }
    if (snapshot < shard.engine.window_start() &&
        !sub.offload.reads.empty()) {
        return make_result(core::Verdict::kWindowOverflow);
    }
    sub.offload.snapshot_cid = snapshot;
    shard.engine.classify_into(sub.offload, classified);
    // A cross-shard transaction may not serialize before anything
    // (fence = next_cid rejects every forward edge); a single-shard one
    // may not serialize before the latest cross-shard commit.
    const uint64_t fence = cross ? shard.engine.next_cid() : shard.fence;
    for (uint64_t cid : classified->forward) {
        if (cid < fence) {
            // Provenance: the fence-protected commit we would have had
            // to serialize before is the conflicting transaction.
            return {core::Verdict::kAbortCycle, 0,
                    obs::AbortReason::kCrossShardFence, cid};
        }
    }
    return make_result(core::Verdict::kCommit);
}

void
ShardRouter::commit_slice(Shard& shard, const SubRequest& sub,
                          const core::ValidationRequest& classified,
                          uint64_t global, bool cross)
{
    const core::ValidationResult local =
        shard.engine.commit_classified(classified, sub.offload);
    // The caller holds the shard lock since validate_only/prepare said
    // kCommit, and decide() is deterministic on unchanged state.
    ROCOCO_CHECK(local.verdict == core::Verdict::kCommit);
    shard.commit_globals.push_back(global);
    if (shard.commit_globals.size() > shard.engine.config().window) {
        shard.commit_globals.pop_front();
        ++shard.evicted;
    }
    if (cross) {
        shard.fence = local.cid + 1;
    }
}

void
ShardRouter::count_verdict(Shard& shard, const core::ValidationResult& result)
{
    shard.validations->add();
    if (result.verdict != core::Verdict::kCommit) {
        shard.aborts->add();
    }
}

void
ShardRouter::attribute_conflict(Shard& shard, const SubRequest& sub,
                                core::ValidationResult* result)
{
    const uint64_t local = result->conflict_cid;
    if (local == core::kNoConflictCid) return;
    conflict_attributed_->add();
    shard.conflict_victims->add();
    shard.conflict_aggressors->add();
    const uint64_t next = shard.engine.next_cid();
    if (local < next) {
        // Window-tuning signal: how far back the collision sits (1 =
        // the latest commit).
        conflict_depth_->record(next - local);
        // Hot-key forensics: fence rejections are raised here in the
        // coordinator, before the manager ever sees the request, so
        // without this offer `svcctl top` stays empty on sharded
        // deployments. Engine-raised cycle aborts already fed the
        // sketch inside commit_classified — skip those.
        if (result->reason == obs::AbortReason::kCrossShardFence) {
            shard.engine.record_conflict(sub.offload, local);
        }
    }
    // Translate the engine-local cid into the global commit number the
    // client-facing cid space uses. The ring tracks the last
    // commit_globals.size() local cids, newest = next_cid - 1.
    const uint64_t first = next - shard.commit_globals.size();
    result->conflict_cid =
        (local >= first && local < next)
            ? shard.commit_globals[static_cast<size_t>(local - first)]
            : core::kNoConflictCid;
}

core::ValidationResult
ShardRouter::process(const fpga::OffloadRequest& request, RouteInfo* info)
{
    submitted_->add();
    if (stopped_.load(std::memory_order_acquire)) {
        const auto result = make_result(core::Verdict::kRejected);
        verdict_[static_cast<size_t>(result.verdict)]->add();
        return result;
    }
    total_->add();
    // Read-only fast path (§5.3): identical to the single-engine
    // deployment, no shard is consulted.
    if (request.writes.empty() && !config_.engine.strict_read_only) {
        if (info != nullptr) {
            *info = RouteInfo{};
        }
        verdict_[static_cast<size_t>(core::Verdict::kCommit)]->add();
        return make_result(core::Verdict::kCommit);
    }

    const uint64_t t_route = obs::now_ns();
    // Per-thread scratch: a warm steady-state validation reuses the
    // split entries, the per-slice classification buffers and the lock
    // array, so the routing path allocates nothing. Safe across router
    // instances — the scratch carries no state between calls.
    static thread_local SplitScratch split_scratch;
    partitioner_.split_into(request, split_scratch);
    std::span<SubRequest> subs(split_scratch.entries.data(),
                               split_scratch.count);
    ROCOCO_CHECK(!subs.empty());
    const bool cross = subs.size() > 1;
    core::ValidationResult result = make_result(core::Verdict::kAbortCycle);

    if (!cross) {
        Shard& shard = *shards_[subs[0].shard];
        std::lock_guard<std::mutex> lock(shard.mutex);
        const uint64_t t_locked = obs::now_ns();
        route_ns_->record(t_locked - t_route);
        static thread_local core::ValidationRequest classified;
        result = prepare_slice(shard, subs[0], request.snapshot_cid,
                               /*cross=*/false, &classified);
        if (result.verdict == core::Verdict::kCommit) {
            result = shard.engine.commit_classified(classified,
                                                    subs[0].offload);
            if (result.verdict == core::Verdict::kCommit) {
                const uint64_t global = global_commits_.fetch_add(
                    1, std::memory_order_acq_rel);
                shard.commit_globals.push_back(global);
                if (shard.commit_globals.size() >
                    shard.engine.config().window) {
                    shard.commit_globals.pop_front();
                    ++shard.evicted;
                }
                result.cid = global;
            }
        }
        if (result.verdict != core::Verdict::kCommit) {
            attribute_conflict(shard, subs[0], &result);
        }
        count_verdict(shard, result);
        if (info != nullptr) {
            *info = RouteInfo{1, t_locked - t_route, 0};
        }
    } else {
        cross_->add();
        // Reserve: all touched shard locks, ascending shard index
        // (split_into() orders subs), so concurrent coordinators cannot
        // deadlock.
        static thread_local std::vector<std::unique_lock<std::mutex>> locks;
        locks.clear();
        for (const SubRequest& sub : subs) {
            locks.emplace_back(shards_[sub.shard]->mutex);
        }
        const uint64_t t_locked = obs::now_ns();
        route_ns_->record(t_locked - t_route);

        static thread_local std::vector<core::ValidationRequest> classified;
        if (classified.size() < subs.size()) {
            classified.resize(subs.size());
        }
        result = make_result(core::Verdict::kCommit);
        size_t examined = 0;
        for (size_t i = 0; i < subs.size(); ++i) {
            Shard& shard = *shards_[subs[i].shard];
            examined = i + 1;
            result = prepare_slice(shard, subs[i], request.snapshot_cid,
                                   /*cross=*/true, &classified[i]);
            if (result.verdict != core::Verdict::kCommit) {
                break;
            }
            const core::Verdict verdict =
                shard.engine.validate_only(classified[i]);
            if (verdict != core::Verdict::kCommit) {
                result = make_result(verdict);
                break;
            }
        }
        if (result.verdict == core::Verdict::kCommit) {
            // Commit: one atomic position in the global order for every
            // slice, taken while all the locks are still held.
            const uint64_t global =
                global_commits_.fetch_add(1, std::memory_order_acq_rel);
            for (size_t i = 0; i < subs.size(); ++i) {
                commit_slice(*shards_[subs[i].shard], subs[i],
                             classified[i], global, /*cross=*/true);
            }
            result = make_result(core::Verdict::kCommit, global);
            for (const SubRequest& sub : subs) {
                count_verdict(*shards_[sub.shard], result);
            }
        } else {
            // Release: nothing was committed; attribute the abort to
            // the shard that rejected, the validation work to every
            // shard examined.
            for (size_t i = 0; i + 1 < examined; ++i) {
                shards_[subs[i].shard]->validations->add();
            }
            if (examined > 0) {
                Shard& rejecting = *shards_[subs[examined - 1].shard];
                attribute_conflict(rejecting, subs[examined - 1], &result);
                count_verdict(rejecting, result);
            }
        }
        const uint64_t t_done = obs::now_ns();
        coord_ns_->record(t_done - t_locked);
        if (info != nullptr) {
            *info = RouteInfo{static_cast<uint32_t>(subs.size()),
                              t_locked - t_route, t_done - t_locked};
        }
        locks.clear(); // release now — the vector is thread_local
    }
    verdict_[static_cast<size_t>(result.verdict)]->add();
    return result;
}

size_t
ShardRouter::occupancy() const
{
    size_t total = 0;
    for (const auto& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        total += shard->engine.manager().validator().occupancy();
    }
    return total;
}

double
ShardRouter::imbalance() const
{
    uint64_t max_validations = 0, sum_validations = 0;
    for (const auto& shard : shards_) {
        const uint64_t v = shard->validations->value();
        max_validations = std::max(max_validations, v);
        sum_validations += v;
    }
    const double mean = static_cast<double>(sum_validations) /
                        static_cast<double>(config_.shards);
    return mean > 0.0 ? static_cast<double>(max_validations) / mean : 0.0;
}

double
ShardRouter::isolated_latency_ns(const fpga::OffloadRequest& request) const
{
    return shards_[0]->engine.isolated_latency_ns(request);
}

const fpga::ValidationEngine&
ShardRouter::engine(uint32_t s) const
{
    ROCOCO_CHECK(s < shards_.size());
    return shards_[s]->engine;
}

std::future<core::ValidationResult>
ShardRouter::submit(fpga::OffloadRequest request)
{
    std::promise<core::ValidationResult> promise;
    promise.set_value(process(request));
    return promise.get_future();
}

core::ValidationResult
ShardRouter::validate(fpga::OffloadRequest request)
{
    return process(request);
}

core::ValidationResult
ShardRouter::validate(fpga::OffloadRequest request,
                      std::chrono::nanoseconds timeout)
{
    // The router has no queue: the only wait is lock acquisition, which
    // is bounded by engine passes. Honor an already-expired deadline
    // (the pipeline contract) without instrumenting the lock path.
    if (timeout <= std::chrono::nanoseconds::zero()) {
        submitted_->add();
        verdict_[static_cast<size_t>(core::Verdict::kTimeout)]->add();
        return make_result(core::Verdict::kTimeout);
    }
    return process(request);
}

CounterBag
ShardRouter::stats() const
{
    return registry_.to_counter_bag();
}

void
ShardRouter::export_metrics(obs::Registry& registry) const
{
    uint64_t max_validations = 0;
    uint64_t sum_validations = 0;
    for (uint32_t s = 0; s < config_.shards; ++s) {
        Shard& shard = *shards_[s];
        size_t occupancy = 0;
        obs::TopK::Entry top[kTopKExportRanks];
        size_t top_n = 0;
        {
            std::lock_guard<std::mutex> lock(shard.mutex);
            occupancy = shard.engine.manager().validator().occupancy();
            top_n = shard.engine.conflict_topk().snapshot(
                top, kTopKExportRanks);
        }
        const std::string prefix = "shard." + std::to_string(s);
        for (size_t r = 0; r < top_n; ++r) {
            const std::string rank = prefix + ".topk." + std::to_string(r);
            registry_.gauge(rank + ".key")
                .set(static_cast<double>(top[r].key));
            registry_.gauge(rank + ".count")
                .set(static_cast<double>(top[r].count));
        }
        registry_.gauge(prefix + ".occupancy")
            .set(static_cast<double>(occupancy));
        const uint64_t v = shard.validations->value();
        max_validations = std::max(max_validations, v);
        sum_validations += v;
    }
    const uint64_t total = total_->value();
    registry_.gauge("shard.cross_fraction")
        .set(total > 0
                 ? static_cast<double>(cross_->value()) /
                       static_cast<double>(total)
                 : 0.0);
    const double mean = static_cast<double>(sum_validations) /
                        static_cast<double>(config_.shards);
    registry_.gauge("shard.imbalance")
        .set(mean > 0.0 ? static_cast<double>(max_validations) / mean : 0.0);
    registry.merge(registry_);
}

void
ShardRouter::topk_json(std::string* out) const
{
    char buf[128];
    out->clear();
    *out += "{\"shards\": [";
    for (uint32_t s = 0; s < config_.shards; ++s) {
        Shard& shard = *shards_[s];
        obs::TopK::Entry top[obs::TopK::kCapacity];
        size_t n = 0;
        uint64_t offered = 0;
        {
            std::lock_guard<std::mutex> lock(shard.mutex);
            const obs::TopK& sketch = shard.engine.conflict_topk();
            offered = sketch.offered();
            n = sketch.snapshot(top, obs::TopK::kCapacity);
        }
        std::snprintf(buf, sizeof(buf),
                      "%s{\"shard\": %u, \"offered\": %" PRIu64
                      ", \"entries\": [",
                      s == 0 ? "" : ", ", s, offered);
        *out += buf;
        for (size_t i = 0; i < n; ++i) {
            std::snprintf(buf, sizeof(buf),
                          "%s{\"key\": %" PRIu64 ", \"count\": %" PRIu64
                          ", \"error\": %" PRIu64 "}",
                          i == 0 ? "" : ", ", top[i].key, top[i].count,
                          top[i].error);
            *out += buf;
        }
        *out += "]}";
    }
    *out += "]}";
}

std::shared_ptr<const sig::SignatureConfig>
ShardRouter::signature_config() const
{
    return shards_[0]->engine.signature_config();
}

void
ShardRouter::stop()
{
    stopped_.store(true, std::memory_order_release);
}

} // namespace rococo::shard
