/// @file
/// Address-space partitioning for the sharded validation tier.
///
/// Each 64-bit address is owned by exactly one of S shards, chosen by a
/// multiply-shift hash (sig/hash.h — the same family the paper picks
/// for the signature path, §5.2), so ownership is stateless, uniform,
/// and identically computable by every layer that needs it: the router,
/// the benches that construct shard-local or deliberately cross-shard
/// workloads, and the tests that force coordinator paths.
///
/// The partitioner also splits an OffloadRequest into per-shard
/// sub-requests: shard s sees only the addresses it owns, so its
/// Detector signatures and reachability window cover exactly its slice
/// of the address space. An edge between two transactions always lives
/// in exactly one shard (it needs a shared address, and every address
/// has one owner) — the property the cross-shard coordination argument
/// in docs/SHARDING.md rests on.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fpga/detector.h"
#include "sig/hash.h"

namespace rococo::shard {

/// One shard's slice of an OffloadRequest, tagged with its shard index.
struct SubRequest
{
    uint32_t shard = 0;
    fpga::OffloadRequest offload; ///< snapshot_cid filled by the router
};

/// Reusable scratch for split_into(). The entry pool and the
/// shard-to-entry table keep their capacity across calls, so a warm
/// split allocates nothing — the router keeps one per thread.
struct SplitScratch
{
    /// Entry pool; entries[0..count) are the result of the last
    /// split_into(), ordered by ascending shard index.
    std::vector<SubRequest> entries;
    size_t count = 0;
    /// shard -> 1 + entry index while splitting, 0 untouched.
    std::vector<uint32_t> slot;
};

/// Stateless hash partitioner over [0, shards).
class Partitioner
{
  public:
    /// @param shards number of shards S (>= 1)
    /// @param seed hash seed; must agree wherever ownership is computed
    explicit Partitioner(uint32_t shards, uint64_t seed = 42);

    uint32_t shards() const { return shards_; }

    /// Owning shard of @p address.
    uint32_t
    shard_of(uint64_t address) const
    {
        // One multiply-shift draw into a power-of-two range, folded to
        // S by fixed-point scaling (unbiased for S << 2^32).
        return static_cast<uint32_t>(
            (hasher_.hash(address, 0) * uint64_t{shards_}) >> 32);
    }

    /// Split @p request into per-shard sub-requests, one entry per
    /// *touched* shard, ordered by ascending shard index — the
    /// deterministic lock order the coordinator relies on. Sub-request
    /// snapshot_cids are left zero (the router translates them).
    std::vector<SubRequest> split(const fpga::OffloadRequest& request) const;

    /// split() into caller-owned scratch, reusing its capacity (the
    /// zero-allocation hot path): @p out.entries[0..out.count) receive
    /// the per-shard sub-requests in ascending shard order.
    void split_into(const fpga::OffloadRequest& request,
                    SplitScratch& out) const;

    /// Number of distinct shards @p request touches (cheaper than
    /// split() when only the single-vs-cross classification matters).
    uint32_t touched(std::span<const uint64_t> reads,
                     std::span<const uint64_t> writes) const;

  private:
    uint32_t shards_;
    sig::MultiplyShiftHasher hasher_;
};

} // namespace rococo::shard
