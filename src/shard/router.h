/// @file
/// Sharded validation tier: S independent ValidationEngines — each with
/// its own sliding window, cid space and signature history — behind one
/// fpga::ValidationBackend seam, multiplying the effective window
/// capacity of the single W=64 engine by the shard count (the scaling
/// axis SafarDB takes across accelerator instances).
///
/// Routing. Every address is owned by exactly one shard
/// (shard/partition.h), so every ->rw edge lives in exactly one shard.
/// A transaction touching one shard — the common case the tier is
/// built to keep cheap — validates on that shard alone, in one pass,
/// under that shard's lock, with full ROCoCo flexibility. A
/// transaction touching multiple shards goes through a two-phase
/// coordinator:
///
///   reserve — acquire every touched shard's lock in ascending shard
///       order (a deterministic total order, so concurrent
///       coordinators cannot deadlock) and validate the per-shard
///       slice on each shard without committing. The held lock IS the
///       provisional verdict slot: no other transaction can slip into
///       the shard between reserve and commit, so a reserve-time
///       verdict cannot go stale.
///   commit — only if every shard validated: commit every slice, all
///       under the same lock set, so the transaction occupies one
///       atomic position in the global commit order.
///   release — on any shard's abort, drop the locks; nothing was
///       committed anywhere, no engine state to undo.
///
/// Cross-shard serializability. Per-shard validation alone is unsound:
/// two shards can each accept an edge of a cycle the other never sees.
/// The tier closes this with two conservative rules (proof sketch in
/// docs/SHARDING.md):
///
///   * a cross-shard transaction must have no forward dependencies —
///     it serializes after everything committed at its validation, and
///     its position is the same on every shard (locks make it atomic);
///   * each shard keeps a fence at the cid of its latest cross-shard
///     commit; no later transaction may take a forward dependency at
///     or behind the fence ("commit into the past" never crosses a
///     cross-shard commit).
///
/// Violations abort with obs::AbortReason::kCrossShardFence. Between
/// fences, single-shard transactions keep the full ROCoCo reachability
/// flexibility of the paper.
///
/// Snapshots. Clients ship one global snapshot_cid (commits observed,
/// exactly the ValidTS the single-engine deployment ships). Each shard
/// remembers the global commit number of every commit still in its
/// window, so the router translates the global snapshot into an exact
/// per-shard snapshot. A snapshot too old to translate (the shard has
/// evicted commits the reader may not have observed) aborts
/// kWindowOverflow — the paper's "neglects updates of t_{k-W}" rule at
/// shard granularity. kCommit results carry the *global* commit number
/// as their cid, so the TM's cid-ordered write-back is unchanged.
///
/// Threading. The router owns no threads: validation runs in the
/// calling thread under the touched shards' locks, so concurrent
/// callers on different shards validate genuinely in parallel — the
/// throughput multiplier bench/ablation_shards.cc measures. submit()
/// returns an already-resolved future (never a broken promise;
/// submissions after stop() resolve kRejected, mirroring
/// ValidationPipeline). Per-request scratch (the partition split, the
/// classified ValidationRequest, the lock array) is thread_local, so
/// any number of caller threads are safe. The multi-threaded server
/// (svc::WorkerPool) layers an *affinity* discipline on top: it sends
/// every single-shard request for shard s to one fixed worker, turning
/// the per-shard mutex from a point of contention into a handoff —
/// the worker is the only thread that ever takes shard s's lock for
/// single-shard work, so the acquisition is always uncontended.
/// Cross-shard requests ignore affinity and take their ascending
/// unique_lock sets (deadlock-free by the total order on shard ids),
/// contending with the owning workers; correctness never depends on
/// the affinity, only the fast path does.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "fpga/validation_backend.h"
#include "fpga/validation_engine.h"
#include "obs/registry.h"
#include "shard/partition.h"

namespace rococo::shard {

struct ShardConfig
{
    /// Number of validation engines S (>= 1; 1 degenerates to a
    /// single-engine backend with router bookkeeping).
    uint32_t shards = 4;
    /// Per-shard engine geometry: every shard gets its *own* window of
    /// engine.window entries, so total capacity is shards x window.
    fpga::EngineConfig engine;
    /// Seed of the address partitioner; anything computing ownership
    /// (benches, tests) must agree.
    uint64_t partition_seed = 42;
};

/// Per-call routing attribution, for svc.stage.shard_route /
/// svc.stage.shard_coord and the ablation bench.
struct RouteInfo
{
    uint32_t shards_touched = 0;
    uint64_t route_ns = 0; ///< partition + lock acquisition
    uint64_t coord_ns = 0; ///< cross-shard reserve+commit (0 single-shard)
};

/// Fixed-capacity FIFO of strictly increasing values — the shard's
/// in-window commit ledger. A std::deque here allocates a fresh block
/// every ~64 push/pop rotations, which is a per-commit heap hit on the
/// hot path (tests/hotpath_alloc_test.cc pins the steady state at
/// exactly zero); the ledger is bounded by the engine window, so a
/// preallocated ring needs no growth ever. Monotonicity keeps rank
/// queries a binary search.
class MonotoneRing
{
  public:
    /// Size the ring for @p capacity values. Existing contents are
    /// discarded. Allocates; call once at construction time.
    void
    reset(size_t capacity)
    {
        buf_.assign(capacity, 0);
        head_ = 0;
        count_ = 0;
    }

    size_t size() const { return count_; }
    bool empty() const { return count_ == 0; }
    uint64_t front() const { return buf_[head_]; }
    uint64_t
    operator[](size_t i) const
    {
        return buf_[(head_ + i) % buf_.size()];
    }

    void
    push_back(uint64_t value)
    {
        buf_[(head_ + count_) % buf_.size()] = value;
        ++count_;
    }

    void
    pop_front()
    {
        head_ = (head_ + 1) % buf_.size();
        --count_;
    }

    /// Number of stored values < @p v (equivalently, the index of the
    /// first value >= v): std::lower_bound over the logical order.
    size_t
    rank(uint64_t v) const
    {
        size_t lo = 0;
        size_t hi = count_;
        while (lo < hi) {
            const size_t mid = lo + (hi - lo) / 2;
            if ((*this)[mid] < v) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        return lo;
    }

  private:
    std::vector<uint64_t> buf_;
    size_t head_ = 0;
    size_t count_ = 0;
};

class ShardRouter final : public fpga::ValidationBackend
{
  public:
    explicit ShardRouter(const ShardConfig& config = {});
    ~ShardRouter() override;

    ShardRouter(const ShardRouter&) = delete;
    ShardRouter& operator=(const ShardRouter&) = delete;

    const ShardConfig& config() const { return config_; }
    const Partitioner& partitioner() const { return partitioner_; }

    /// Validate synchronously in the calling thread. @p info, when
    /// non-null, receives the routing attribution of this call.
    core::ValidationResult process(const fpga::OffloadRequest& request,
                                   RouteInfo* info = nullptr);

    /// Total commits across all shards — the global cid space. A
    /// kCommit result's cid is this counter's value at its commit.
    uint64_t global_commits() const
    {
        return global_commits_.load(std::memory_order_acquire);
    }

    /// Sum of per-shard window occupancies.
    size_t occupancy() const;

    /// Live max/mean of the per-shard validation counts — the same
    /// value export_metrics publishes as the shard.imbalance gauge,
    /// readable without a snapshot (lock-free counter reads) so the
    /// MetricSampler can track it as a series. 1.0 is perfectly
    /// balanced; 0 before any validation.
    double imbalance() const;

    /// Modeled isolated CCI latency of @p request on one engine (all
    /// shards share the link parameters).
    double isolated_latency_ns(const fpga::OffloadRequest& request) const;

    /// Diagnostic / test access to shard @p s's engine. Not
    /// synchronized: callers must be quiescent.
    const fpga::ValidationEngine& engine(uint32_t s) const;

    // fpga::ValidationBackend
    std::future<core::ValidationResult> submit(
        fpga::OffloadRequest request) override;
    core::ValidationResult validate(fpga::OffloadRequest request) override;
    core::ValidationResult validate(
        fpga::OffloadRequest request,
        std::chrono::nanoseconds timeout) override;

    /// Counters: per-verdict totals ("commit" / "abort-cycle" /
    /// "window-overflow"), "submitted", "timeout", plus the shard.*
    /// keys (shard.<i>.validations, shard.<i>.aborts,
    /// shard.validations, shard.cross).
    CounterBag stats() const override;

    /// Merge router metrics into @p registry: the counters above plus
    /// shard.<i>.occupancy gauges, the shard.cross_fraction and
    /// shard.imbalance gauges (max/mean per-shard validations,
    /// refreshed at export), shard.route_ns / shard.coord_ns
    /// histograms, the conflict-forensics aggregates
    /// (shard.<i>.conflict.{victims,aggressors}, shard.conflict.depth)
    /// and the per-shard hot-key table
    /// (shard.<i>.topk.<rank>.{key,count} gauges — note keys above 2^53
    /// lose precision through the double-typed gauge; the kTopK wire op
    /// / topk_json() carries them exactly).
    void export_metrics(obs::Registry& registry) const override;

    /// Serialize every shard's conflict top-K table as JSON (the kTopK
    /// wire-op payload): {"shards": [{"shard": s, "offered": n,
    /// "entries": [{"key":..,"count":..,"error":..}, ...]}, ...]}.
    /// Takes each shard lock in turn; exact u64 keys.
    void topk_json(std::string* out) const;

    std::shared_ptr<const sig::SignatureConfig> signature_config()
        const override;

    /// No worker to stop; later submissions resolve kRejected.
    /// Idempotent.
    void stop() override;

  private:
    struct Shard
    {
        std::mutex mutex;
        fpga::ValidationEngine engine;
        /// Global commit number of each in-window commit, oldest first;
        /// evicted in lockstep with the engine window. Sized to
        /// window + 1 at construction (push precedes the conditional
        /// evicting pop), so steady-state commits never allocate.
        MonotoneRing commit_globals;
        uint64_t evicted = 0; ///< per-shard commits dropped from the ring
        /// Per-shard cids < fence may not be forward-dependency targets
        /// (fence = latest cross-shard commit's cid + 1).
        uint64_t fence = 0;
        obs::Counter* validations = nullptr;
        obs::Counter* aborts = nullptr;
        /// Conflict forensics: transactions aborted on this shard with
        /// a named conflicting commit (victims), and times one of this
        /// shard's commits was named as the collision target
        /// (aggressors). They coincide today — a conflict never spans
        /// engines — but the two roles are kept separate so the
        /// scheduler work can consume either signal.
        obs::Counter* conflict_victims = nullptr;
        obs::Counter* conflict_aggressors = nullptr;

        explicit Shard(const fpga::EngineConfig& engine_config)
            : engine(engine_config)
        {
            commit_globals.reset(engine.config().window + 1);
        }
    };

    /// Exact per-shard snapshot for global snapshot @p g, or false when
    /// the shard has evicted commits the reader may not have observed
    /// (conservative kWindowOverflow unless the slice reads nothing).
    static bool translate_snapshot(const Shard& shard, uint64_t g,
                                   uint64_t* out);

    /// Validate one slice on one locked shard up to (not including) the
    /// engine decision: translation, overflow precheck, classification,
    /// fence check. Returns kCommit with @p classified filled when the
    /// slice may proceed to validate/commit.
    core::ValidationResult prepare_slice(Shard& shard, SubRequest& sub,
                                         uint64_t global_snapshot,
                                         bool cross,
                                         core::ValidationRequest* classified);

    /// Record @p sub's commit on @p shard: engine commit, global-number
    /// bookkeeping, fence advance for cross-shard commits.
    void commit_slice(Shard& shard, const SubRequest& sub,
                      const core::ValidationRequest& classified,
                      uint64_t global, bool cross);

    void count_verdict(Shard& shard, const core::ValidationResult& result);

    /// Abort provenance bookkeeping for a non-commit @p result carrying
    /// a shard-local conflict_cid: bump the victim/aggressor counters,
    /// record the conflict depth (how far back in the window the
    /// collision sits), and translate conflict_cid to the global commit
    /// number in place (kNoConflictCid when the mapping was evicted).
    /// Caller holds @p shard's lock.
    void attribute_conflict(Shard& shard, const SubRequest& sub,
                            core::ValidationResult* result);

    ShardConfig config_;
    Partitioner partitioner_;
    std::vector<std::unique_ptr<Shard>> shards_;
    std::atomic<uint64_t> global_commits_{0};
    std::atomic<bool> stopped_{false};

    /// shard.* metrics (thread-safe; mutable so the const export path
    /// can refresh derived gauges).
    mutable obs::Registry registry_;
    obs::Counter* submitted_ = nullptr;
    obs::Counter* cross_ = nullptr;
    obs::Counter* total_ = nullptr;
    /// Per-verdict counters resolved once at construction: the hot path
    /// must not build a name string and take the registry mutex per
    /// request (Counter::add is lock-free, lookup is not).
    obs::Counter* verdict_[core::kVerdictCount] = {};
    obs::LatencyHistogram* route_ns_ = nullptr;
    obs::LatencyHistogram* coord_ns_ = nullptr;
    /// Conflict forensics aggregates (see attribute_conflict()).
    obs::Counter* conflict_attributed_ = nullptr;
    obs::LatencyHistogram* conflict_depth_ = nullptr;
};

} // namespace rococo::shard
