#include "shard/shard_cc.h"

namespace rococo::shard {

ShardCc::ShardCc(ShardConfig config)
    : config_(config)
{
    // Replay counts every commit as a cid, so read-only transactions
    // must be validated strictly for the accounting to stay aligned.
    config_.engine.strict_read_only = true;
}

void
ShardCc::reset(const cc::ReplayContext& context)
{
    router_ = std::make_unique<ShardRouter>(config_);
    cid_prefix_.assign(context.trace().size() + 1, 0);
}

bool
ShardCc::decide(const cc::ReplayContext& context, size_t i)
{
    const cc::TraceTxn& txn = context.trace().txns[i];
    fpga::OffloadRequest request;
    request.reads = txn.reads;
    request.writes = txn.writes;
    // The global snapshot: every commit that had happened when the
    // earliest transaction concurrent with i started.
    request.snapshot_cid = cid_prefix_[context.first_concurrent(i)];
    const auto result = router_->process(request);
    cid_prefix_[i + 1] = router_->global_commits();
    return result.verdict == core::Verdict::kCommit;
}

} // namespace rococo::shard
