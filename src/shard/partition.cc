#include "shard/partition.h"

#include <algorithm>
#include <bit>

#include "common/check.h"

namespace rococo::shard {

Partitioner::Partitioner(uint32_t shards, uint64_t seed)
    : shards_(shards), hasher_(1, uint64_t{1} << 32, seed)
{
    ROCOCO_CHECK(shards >= 1);
}

std::vector<SubRequest>
Partitioner::split(const fpga::OffloadRequest& request) const
{
    std::vector<SubRequest> subs;
    if (shards_ == 1) {
        subs.push_back({0, {request.reads, request.writes, 0}});
        return subs;
    }
    // slot[s] = 1 + index of shard s in subs, 0 while untouched.
    std::vector<uint32_t> slot(shards_, 0);
    auto sub_for = [&](uint64_t address) -> fpga::OffloadRequest& {
        const uint32_t s = shard_of(address);
        if (slot[s] == 0) {
            subs.push_back({s, {}});
            slot[s] = static_cast<uint32_t>(subs.size());
        }
        return subs[slot[s] - 1].offload;
    };
    for (uint64_t address : request.reads) {
        sub_for(address).reads.push_back(address);
    }
    for (uint64_t address : request.writes) {
        sub_for(address).writes.push_back(address);
    }
    std::sort(subs.begin(), subs.end(),
              [](const SubRequest& a, const SubRequest& b) {
                  return a.shard < b.shard;
              });
    return subs;
}

uint32_t
Partitioner::touched(std::span<const uint64_t> reads,
                     std::span<const uint64_t> writes) const
{
    if (shards_ == 1) return reads.empty() && writes.empty() ? 0 : 1;
    uint64_t mask = 0; // shards_ > 64 falls back to split() size
    if (shards_ <= 64) {
        for (uint64_t address : reads) mask |= uint64_t{1} << shard_of(address);
        for (uint64_t address : writes) {
            mask |= uint64_t{1} << shard_of(address);
        }
        return static_cast<uint32_t>(std::popcount(mask));
    }
    fpga::OffloadRequest request;
    request.reads.assign(reads.begin(), reads.end());
    request.writes.assign(writes.begin(), writes.end());
    return static_cast<uint32_t>(split(request).size());
}

} // namespace rococo::shard
