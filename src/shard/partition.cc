#include "shard/partition.h"

#include <algorithm>
#include <bit>

#include "common/check.h"

namespace rococo::shard {

Partitioner::Partitioner(uint32_t shards, uint64_t seed)
    : shards_(shards), hasher_(1, uint64_t{1} << 32, seed)
{
    ROCOCO_CHECK(shards >= 1);
}

std::vector<SubRequest>
Partitioner::split(const fpga::OffloadRequest& request) const
{
    SplitScratch scratch;
    split_into(request, scratch);
    scratch.entries.resize(scratch.count);
    return std::move(scratch.entries);
}

void
Partitioner::split_into(const fpga::OffloadRequest& request,
                        SplitScratch& out) const
{
    out.count = 0;
    auto next_entry = [&](uint32_t s) -> SubRequest& {
        if (out.count == out.entries.size()) out.entries.emplace_back();
        SubRequest& sub = out.entries[out.count++];
        sub.shard = s;
        sub.offload.reads.clear();
        sub.offload.writes.clear();
        sub.offload.snapshot_cid = 0;
        return sub;
    };
    if (shards_ == 1) {
        SubRequest& sub = next_entry(0);
        sub.offload.reads = request.reads;
        sub.offload.writes = request.writes;
        return;
    }
    // slot[s] = 1 + entry index of shard s, 0 while untouched.
    out.slot.assign(shards_, 0);
    auto sub_for = [&](uint64_t address) -> fpga::OffloadRequest& {
        const uint32_t s = shard_of(address);
        if (out.slot[s] == 0) {
            next_entry(s);
            out.slot[s] = static_cast<uint32_t>(out.count);
        }
        return out.entries[out.slot[s] - 1].offload;
    };
    for (uint64_t address : request.reads) {
        sub_for(address).reads.push_back(address);
    }
    for (uint64_t address : request.writes) {
        sub_for(address).writes.push_back(address);
    }
    std::sort(out.entries.begin(),
              out.entries.begin() + static_cast<ptrdiff_t>(out.count),
              [](const SubRequest& a, const SubRequest& b) {
                  return a.shard < b.shard;
              });
}

uint32_t
Partitioner::touched(std::span<const uint64_t> reads,
                     std::span<const uint64_t> writes) const
{
    if (shards_ == 1) return reads.empty() && writes.empty() ? 0 : 1;
    uint64_t mask = 0; // shards_ > 64 falls back to split() size
    if (shards_ <= 64) {
        for (uint64_t address : reads) mask |= uint64_t{1} << shard_of(address);
        for (uint64_t address : writes) {
            mask |= uint64_t{1} << shard_of(address);
        }
        return static_cast<uint32_t>(std::popcount(mask));
    }
    fpga::OffloadRequest request;
    request.reads.assign(reads.begin(), reads.end());
    request.writes.assign(writes.begin(), writes.end());
    return static_cast<uint32_t>(split(request).size());
}

} // namespace rococo::shard
