/// @file
/// Trace-replay adapter driving the sharded validation tier, so the
/// cross-shard coordination rules can be checked against the exact
/// serializability oracle (graph/serializability.h) on the same traces
/// every other CC algorithm replays. Strictly more conservative than
/// EngineCc (same signatures per shard, plus the cross-shard fence
/// rules) but must never admit a non-serializable history — the
/// property tests/shard_test.cc hammers with forced cross-shard
/// conflicts.
#pragma once

#include <memory>

#include "cc/replay.h"
#include "shard/router.h"

namespace rococo::shard {

class ShardCc final : public cc::CcAlgorithm
{
  public:
    explicit ShardCc(ShardConfig config = {});

    std::string name() const override
    {
        return "ROCoCo-shard" + std::to_string(config_.shards);
    }
    void reset(const cc::ReplayContext& context) override;
    bool decide(const cc::ReplayContext& context, size_t i) override;

    const ShardRouter& router() const { return *router_; }

  private:
    ShardConfig config_;
    std::unique_ptr<ShardRouter> router_;
    std::vector<uint64_t> cid_prefix_;
};

} // namespace rococo::shard
