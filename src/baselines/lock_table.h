/// @file
/// Striped versioned-lock table, the per-location metadata of the
/// TinySTM-style baseline (and the ownership table of the simulated
/// HTM). Each shared cell hashes to one of 2^n stripes; a stripe's
/// 64-bit word encodes either an unlocked version (version << 1) or a
/// locked owner (owner << 1 | 1).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

namespace rococo::baselines {

class LockTable
{
  public:
    explicit LockTable(size_t stripes = size_t{1} << 20);

    size_t stripes() const { return stripes_; }

    std::atomic<uint64_t>&
    lock_for(const void* addr)
    {
        return locks_[index_of(addr)];
    }

    size_t
    index_of(const void* addr) const
    {
        auto x = reinterpret_cast<uintptr_t>(addr);
        x ^= x >> 33;
        x *= 0xff51afd7ed558ccdULL;
        x ^= x >> 29;
        return static_cast<size_t>(x) & (stripes_ - 1);
    }

    static bool is_locked(uint64_t word) { return word & 1; }
    static uint64_t version_of(uint64_t word) { return word >> 1; }
    static uint64_t owner_of(uint64_t word) { return word >> 1; }
    static uint64_t make_version(uint64_t version) { return version << 1; }
    static uint64_t make_locked(uint64_t owner) { return (owner << 1) | 1; }

  private:
    size_t stripes_;
    std::unique_ptr<std::atomic<uint64_t>[]> locks_;
};

} // namespace rococo::baselines
