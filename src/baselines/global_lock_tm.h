/// @file
/// Single-global-lock TM: every transaction runs under one mutex.
/// Serves as the correctness reference (trivially serializable), the
/// fallback semantics model, and the denominator-style baseline for
/// speedup tables.
#pragma once

#include <mutex>

#include "common/stats.h"
#include "tm/tm.h"

namespace rococo::baselines {

class GlobalLockTm final : public tm::TmRuntime
{
  public:
    std::string name() const override { return "GlobalLock"; }

    void thread_init(unsigned) override {}
    void thread_fini() override {}

    CounterBag
    stats() const override
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return stats_;
    }

    /// Under a global lock the only abort is a body-requested retry().
    obs::AbortReason
    last_abort_reason() const override
    {
        return obs::AbortReason::kExplicitRetry;
    }

  protected:
    bool try_execute(const std::function<void(tm::Tx&)>& body) override;

  private:
    class DirectTx;

    mutable std::mutex mutex_;
    CounterBag stats_;
};

} // namespace rococo::baselines
