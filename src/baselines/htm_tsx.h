/// @file
/// Simulated best-effort HTM in the style of Intel TSX — the HTM
/// baseline of the paper's evaluation (§6.2).
///
/// Models the properties that shape TSX's Fig. 10 curves:
///  * eager conflict detection: accesses acquire cache-line-like
///    ownership (reader mask / writer slot per stripe); a conflicting
///    access dooms the current owner(s) — requester wins, producing the
///    chain-abort avalanche the paper observes;
///  * capacity aborts: a transaction whose footprint exceeds the
///    modelled cache capacity aborts unconditionally;
///  * best-effort + fallback: after `retries` aborted attempts, the
///    transaction takes a global lock, which quiesces and aborts all
///    speculative transactions (the standard lock-elision fallback).
///    With 4 retries the abort-rate ceiling is 5/6 ≈ 83.3%
///    (footnote 10).
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "baselines/lock_table.h"
#include "common/stats.h"
#include "tm/redo_log.h"
#include "tm/tm.h"

namespace rococo::baselines {

struct HtmConfig
{
    size_t stripes = size_t{1} << 16;
    unsigned max_threads = 64;
    /// Speculative attempts before falling back to the global lock.
    unsigned retries = 4;
    /// Modelled capacity in distinct stripes (write set, ~L1) and
    /// total accesses (read set, ~L2), causing capacity aborts.
    size_t write_capacity = 512;
    size_t read_capacity = 4096;
};

class HtmTsxSim final : public tm::TmRuntime
{
  public:
    ~HtmTsxSim() override;

    explicit HtmTsxSim(const HtmConfig& config = {});

    std::string name() const override { return "HTM-TSX"; }

    void thread_init(unsigned thread_id) override;
    void thread_fini() override;

    CounterBag stats() const override;

    obs::AbortReason last_abort_reason() const override;

  protected:
    bool try_execute(const std::function<void(tm::Tx&)>& body) override;

  private:
    class TxImpl;
    struct Descriptor;

    /// Per-stripe ownership: a 64-thread reader bitmask and a writer
    /// slot (owner + 1, 0 = none).
    struct Stripe
    {
        std::atomic<uint64_t> readers{0};
        std::atomic<uint32_t> writer{0};
    };

    Descriptor& descriptor();

    bool speculative_attempt(const std::function<void(tm::Tx&)>& body,
                             Descriptor& d);
    void fallback_execute(const std::function<void(tm::Tx&)>& body,
                          Descriptor& d);
    void release_footprint(Descriptor& d);
    void doom(unsigned victim);

    HtmConfig config_;
    std::vector<Stripe> stripes_;
    std::unique_ptr<std::atomic<uint32_t>[]> doomed_;

    /// Serializes doom vs. commit decisions (slow paths only).
    std::mutex commit_mutex_;
    /// Set while a fallback (non-speculative) transaction runs.
    std::atomic<uint32_t> fallback_active_{0};
    std::mutex fallback_mutex_;

    mutable std::mutex stats_mutex_;
    CounterBag stats_;
    std::vector<std::unique_ptr<Descriptor>> descriptors_;

    size_t
    stripe_index(const void* addr) const
    {
        auto x = reinterpret_cast<uintptr_t>(addr);
        x ^= x >> 33;
        x *= 0xc2b2ae3d27d4eb4fULL;
        x ^= x >> 29;
        return static_cast<size_t>(x) & (stripes_.size() - 1);
    }
};

} // namespace rococo::baselines
