#include "baselines/global_lock_tm.h"

namespace rococo::baselines {

class GlobalLockTm::DirectTx final : public tm::Tx
{
  public:
    tm::Word
    load(const tm::TmCell& cell) override
    {
        return cell.value.load(std::memory_order_acquire);
    }

    void
    store(tm::TmCell& cell, tm::Word value) override
    {
        cell.value.store(value, std::memory_order_release);
    }

    [[noreturn]] void
    retry() override
    {
        throw tm::TxAbortException{};
    }
};

bool
GlobalLockTm::try_execute(const std::function<void(tm::Tx&)>& body)
{
    std::lock_guard<std::mutex> lock(mutex_);
    DirectTx tx;
    try {
        body(tx);
    } catch (const tm::TxAbortException&) {
        stats_.bump(tm::stat::kAborts);
        return false;
    }
    stats_.bump(tm::stat::kCommits);
    return true;
}

} // namespace rococo::baselines
