/// @file
/// A from-scratch word-based STM in the TinySTM/LSA family — the STM
/// baseline of the paper's evaluation (§6.2): time-based lazy snapshot
/// algorithm, per-stripe versioned locks, and the configuration the
/// paper benchmarks — commit-time locking (lazy conflict detection)
/// with write-back of tentative state on commit (lazy version
/// management).
///
/// A transaction keeps a snapshot timestamp; reads are valid while
/// every read stripe's version is <= snapshot. Reading a newer version
/// triggers LSA snapshot extension: the snapshot can slide forward to
/// the current clock iff all previous reads are still valid (opacity
/// preserved). Writers acquire their stripes at commit, take a commit
/// timestamp from the global clock, re-validate, write back and
/// release with the new version.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "baselines/lock_table.h"
#include "common/stats.h"
#include "tm/redo_log.h"
#include "tm/tm.h"

namespace rococo::baselines {

struct TinyStmConfig
{
    size_t stripes = size_t{1} << 20;
    unsigned max_threads = 64;
    /// Bounded spin on a locked stripe before giving up and aborting.
    unsigned read_lock_spins = 64;
};

class TinyStmLsa final : public tm::TmRuntime
{
  public:
    ~TinyStmLsa() override;

    explicit TinyStmLsa(const TinyStmConfig& config = {});

    std::string name() const override { return "TinySTM-LSA"; }

    void thread_init(unsigned thread_id) override;
    void thread_fini() override;

    CounterBag stats() const override;

    obs::AbortReason last_abort_reason() const override;

  protected:
    bool try_execute(const std::function<void(tm::Tx&)>& body) override;

  private:
    class TxImpl;
    struct Descriptor;

    Descriptor& descriptor();

    /// Restore the first @p count acquired stripes to their saved
    /// versions (abort path) .
    static void release_locks(
        const std::vector<std::atomic<uint64_t>*>& locks,
        const std::vector<uint64_t>& versions, size_t count);

    TinyStmConfig config_;
    LockTable locks_;
    std::atomic<uint64_t> clock_{0};

    mutable std::mutex stats_mutex_;
    CounterBag stats_;
    std::vector<std::unique_ptr<Descriptor>> descriptors_;
};

} // namespace rococo::baselines
