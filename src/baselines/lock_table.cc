#include "baselines/lock_table.h"

#include <bit>

#include "common/check.h"

namespace rococo::baselines {

LockTable::LockTable(size_t stripes)
    : stripes_(stripes),
      locks_(std::make_unique<std::atomic<uint64_t>[]>(stripes))
{
    ROCOCO_CHECK(std::has_single_bit(stripes));
    for (size_t i = 0; i < stripes; ++i) {
        locks_[i].store(0, std::memory_order_relaxed);
    }
}

} // namespace rococo::baselines
