#include "baselines/tinystm_lsa.h"

#include <algorithm>
#include <thread>

#include "common/check.h"

namespace rococo::baselines {
namespace {

thread_local unsigned tls_thread_id = ~0u;

} // namespace

/// Per-thread transaction state.
struct TinyStmLsa::Descriptor
{
    explicit Descriptor(unsigned tid)
        : thread_id(tid)
    {
    }

    struct ReadEntry
    {
        std::atomic<uint64_t>* lock;
        uint64_t version;
    };

    unsigned thread_id;
    uint64_t snapshot = 0;
    std::vector<ReadEntry> read_set;
    tm::RedoLog redo;
    CounterBag stats;
    obs::AbortReason last_abort = obs::AbortReason::kNone;

    void
    reset(uint64_t now)
    {
        snapshot = now;
        read_set.clear();
        redo.clear();
        last_abort = obs::AbortReason::kNone;
    }
};

class TinyStmLsa::TxImpl final : public tm::Tx
{
  public:
    TxImpl(TinyStmLsa& rt, Descriptor& d)
        : rt_(rt), d_(d)
    {
    }

    tm::Word
    load(const tm::TmCell& cell) override
    {
        tm::Word value;
        if (!d_.redo.empty() && d_.redo.get(&cell, value)) return value;

        std::atomic<uint64_t>& lock = rt_.locks_.lock_for(&cell);
        for (unsigned spin = 0;; ++spin) {
            const uint64_t v1 = lock.load(std::memory_order_acquire);
            if (LockTable::is_locked(v1)) {
                // Commit-time locking: the owner is writing back right
                // now; wait briefly, then abort.
                if (spin > rt_.config_.read_lock_spins) {
                    abort_tx(tm::stat::kConflictAborts,
                             obs::AbortReason::kLockedConflict);
                }
                std::this_thread::yield();
                continue;
            }
            value = cell.value.load(std::memory_order_acquire);
            const uint64_t v2 = lock.load(std::memory_order_acquire);
            if (v1 != v2) continue; // raced with a writer; re-read

            if (LockTable::version_of(v1) > d_.snapshot) {
                // LSA snapshot extension.
                if (!extend_snapshot()) {
                    abort_tx(tm::stat::kStaleAborts,
                             obs::AbortReason::kSnapshotStale);
                }
            }
            d_.read_set.push_back({&lock, LockTable::version_of(v1)});
            return value;
        }
    }

    void
    store(tm::TmCell& cell, tm::Word value) override
    {
        d_.redo.put(&cell, value);
    }

    [[noreturn]] void
    retry() override
    {
        abort_tx(tm::stat::kEagerAborts, obs::AbortReason::kExplicitRetry);
    }

  private:
    /// Slide the snapshot to the current clock if every read stripe is
    /// still at its recorded version and unlocked.
    bool
    extend_snapshot()
    {
        const uint64_t now = rt_.clock_.load(std::memory_order_acquire);
        for (const auto& entry : d_.read_set) {
            const uint64_t v = entry.lock->load(std::memory_order_acquire);
            if (LockTable::is_locked(v) ||
                LockTable::version_of(v) != entry.version) {
                return false;
            }
        }
        d_.snapshot = now;
        return true;
    }

    [[noreturn]] void
    abort_tx(const char* counter, obs::AbortReason reason)
    {
        d_.stats.bump(counter);
        d_.last_abort = reason;
        throw tm::TxAbortException{};
    }

    TinyStmLsa& rt_;
    Descriptor& d_;

    friend class TinyStmLsa;
};

TinyStmLsa::TinyStmLsa(const TinyStmConfig& config)
    : config_(config), locks_(config.stripes),
      descriptors_(config.max_threads)
{
}

TinyStmLsa::~TinyStmLsa() = default;

void
TinyStmLsa::thread_init(unsigned thread_id)
{
    ROCOCO_CHECK(thread_id < config_.max_threads);
    if (!descriptors_[thread_id]) {
        descriptors_[thread_id] = std::make_unique<Descriptor>(thread_id);
    }
    tls_thread_id = thread_id;
}

void
TinyStmLsa::thread_fini()
{
    ROCOCO_CHECK(tls_thread_id != ~0u);
    Descriptor& d = *descriptors_[tls_thread_id];
    {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        stats_.add(d.stats);
    }
    d.stats = CounterBag();
    tls_thread_id = ~0u;
}

TinyStmLsa::Descriptor&
TinyStmLsa::descriptor()
{
    ROCOCO_CHECK(tls_thread_id != ~0u);
    return *descriptors_[tls_thread_id];
}

bool
TinyStmLsa::try_execute(const std::function<void(tm::Tx&)>& body)
{
    Descriptor& d = descriptor();
    d.reset(clock_.load(std::memory_order_acquire));
    TxImpl tx(*this, d);

    try {
        body(tx);
    } catch (const tm::TxAbortException&) {
        d.stats.bump(tm::stat::kAborts);
        return false;
    }

    if (d.redo.empty()) {
        d.stats.bump(tm::stat::kCommits);
        d.stats.bump(tm::stat::kReadOnlyCommits);
        return true;
    }

    // Commit phase: acquire write stripes in address order (deadlock
    // freedom), validate, write back, release with the new version.
    std::vector<std::atomic<uint64_t>*> write_locks;
    write_locks.reserve(d.redo.size());
    for (const auto& entry : d.redo.entries()) {
        write_locks.push_back(&locks_.lock_for(entry.cell));
    }
    std::sort(write_locks.begin(), write_locks.end());
    write_locks.erase(std::unique(write_locks.begin(), write_locks.end()),
                      write_locks.end());

    std::vector<uint64_t> saved_versions;
    saved_versions.reserve(write_locks.size());
    const uint64_t me = LockTable::make_locked(d.thread_id);
    for (size_t i = 0; i < write_locks.size(); ++i) {
        uint64_t expected = write_locks[i]->load(std::memory_order_relaxed);
        if (LockTable::is_locked(expected) ||
            LockTable::version_of(expected) > d.snapshot) {
            // Either another committer owns the stripe or our snapshot
            // is stale; check extension below only for version bumps.
            if (LockTable::is_locked(expected)) {
                release_locks(write_locks, saved_versions, i);
                d.stats.bump(tm::stat::kConflictAborts);
                d.stats.bump(tm::stat::kAborts);
                d.last_abort = obs::AbortReason::kLockedConflict;
                return false;
            }
        }
        if (!write_locks[i]->compare_exchange_strong(
                expected, me, std::memory_order_acq_rel)) {
            release_locks(write_locks, saved_versions, i);
            d.stats.bump(tm::stat::kConflictAborts);
            d.stats.bump(tm::stat::kAborts);
            d.last_abort = obs::AbortReason::kLockedConflict;
            return false;
        }
        saved_versions.push_back(LockTable::version_of(expected));
    }

    const uint64_t commit_ts =
        clock_.fetch_add(1, std::memory_order_acq_rel) + 1;

    if (commit_ts > d.snapshot + 1) {
        // Someone committed since our snapshot: re-validate the reads.
        for (const auto& entry : d.read_set) {
            const uint64_t v = entry.lock->load(std::memory_order_acquire);
            const bool mine = LockTable::is_locked(v) &&
                              LockTable::owner_of(v) == d.thread_id;
            if (mine) {
                // We hold this stripe's write lock: compare against the
                // version we saved when acquiring it — another
                // transaction may have committed to the stripe between
                // our read and our lock acquisition.
                const auto it = std::lower_bound(write_locks.begin(),
                                                 write_locks.end(),
                                                 entry.lock);
                ROCOCO_DCHECK(it != write_locks.end() &&
                              *it == entry.lock);
                const size_t idx =
                    static_cast<size_t>(it - write_locks.begin());
                if (saved_versions[idx] == entry.version) continue;
            } else if (!LockTable::is_locked(v) &&
                       LockTable::version_of(v) == entry.version) {
                continue;
            }
            release_locks(write_locks, saved_versions,
                          write_locks.size());
            d.stats.bump(tm::stat::kValidationAborts);
            d.stats.bump(tm::stat::kAborts);
            d.last_abort = obs::AbortReason::kConflict;
            return false;
        }
    }

    d.redo.apply();
    const uint64_t new_version = LockTable::make_version(commit_ts);
    for (auto* lock : write_locks) {
        lock->store(new_version, std::memory_order_release);
    }
    d.stats.bump(tm::stat::kCommits);
    return true;
}

void
TinyStmLsa::release_locks(const std::vector<std::atomic<uint64_t>*>& locks,
                          const std::vector<uint64_t>& versions,
                          size_t count)
{
    for (size_t i = 0; i < count; ++i) {
        locks[i]->store(LockTable::make_version(versions[i]),
                        std::memory_order_release);
    }
}

CounterBag
TinyStmLsa::stats() const
{
    std::lock_guard<std::mutex> lock(stats_mutex_);
    return stats_;
}

obs::AbortReason
TinyStmLsa::last_abort_reason() const
{
    if (tls_thread_id == ~0u || !descriptors_[tls_thread_id]) {
        return obs::AbortReason::kUnknown;
    }
    return descriptors_[tls_thread_id]->last_abort;
}

} // namespace rococo::baselines
