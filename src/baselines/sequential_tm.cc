#include "baselines/sequential_tm.h"

namespace rococo::baselines {
namespace {

class DirectTx final : public tm::Tx
{
  public:
    tm::Word
    load(const tm::TmCell& cell) override
    {
        return cell.value.load(std::memory_order_relaxed);
    }

    void
    store(tm::TmCell& cell, tm::Word value) override
    {
        cell.value.store(value, std::memory_order_relaxed);
    }

    [[noreturn]] void
    retry() override
    {
        throw tm::TxAbortException{};
    }
};

} // namespace

bool
SequentialTm::try_execute(const std::function<void(tm::Tx&)>& body)
{
    DirectTx tx;
    try {
        body(tx);
    } catch (const tm::TxAbortException&) {
        stats_.bump(tm::stat::kAborts);
        return false;
    }
    stats_.bump(tm::stat::kCommits);
    return true;
}

} // namespace rococo::baselines
