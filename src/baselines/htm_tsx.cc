#include "baselines/htm_tsx.h"

#include <bit>
#include <thread>

#include "common/check.h"

namespace rococo::baselines {
namespace {

thread_local unsigned tls_thread_id = ~0u;

} // namespace

struct HtmTsxSim::Descriptor
{
    explicit Descriptor(unsigned tid)
        : thread_id(tid)
    {
    }

    unsigned thread_id;
    unsigned failed_attempts = 0;
    std::vector<size_t> read_stripes;  ///< stripes with our reader bit
    std::vector<size_t> write_stripes; ///< stripes we own as writer
    tm::RedoLog redo;
    size_t accesses = 0;
    CounterBag stats;
    obs::AbortReason last_abort = obs::AbortReason::kNone;

    void
    reset()
    {
        read_stripes.clear();
        write_stripes.clear();
        redo.clear();
        accesses = 0;
        last_abort = obs::AbortReason::kNone;
    }
};

class HtmTsxSim::TxImpl final : public tm::Tx
{
  public:
    TxImpl(HtmTsxSim& rt, Descriptor& d)
        : rt_(rt), d_(d)
    {
    }

    tm::Word
    load(const tm::TmCell& cell) override
    {
        check_doom_and_capacity();

        const size_t idx = rt_.stripe_index(&cell);
        Stripe& stripe = rt_.stripes_[idx];

        tm::Word value;
        if (!d_.redo.empty() && d_.redo.get(&cell, value)) return value;

        // Acquire shared ownership; a foreign writer loses (requester
        // wins, as when a load forces the writer's M-state line out of
        // its cache).
        const uint32_t writer = stripe.writer.load(std::memory_order_acquire);
        if (writer != 0 && writer != d_.thread_id + 1) {
            rt_.doom(writer - 1);
        }
        const uint64_t my_bit = uint64_t{1} << (d_.thread_id & 63);
        if (!(stripe.readers.load(std::memory_order_relaxed) & my_bit)) {
            stripe.readers.fetch_or(my_bit, std::memory_order_acq_rel);
            d_.read_stripes.push_back(idx);
        }
        ++d_.accesses;
        return cell.value.load(std::memory_order_acquire);
    }

    void
    store(tm::TmCell& cell, tm::Word value) override
    {
        check_doom_and_capacity();

        const size_t idx = rt_.stripe_index(&cell);
        Stripe& stripe = rt_.stripes_[idx];

        // Exclusive ownership: doom every foreign reader and writer
        // (the store invalidates their lines).
        const uint32_t me = d_.thread_id + 1;
        uint32_t writer = stripe.writer.load(std::memory_order_acquire);
        if (writer != me) {
            if (writer != 0) rt_.doom(writer - 1);
            stripe.writer.store(me, std::memory_order_release);
            d_.write_stripes.push_back(idx);
        }
        const uint64_t my_bit = uint64_t{1} << (d_.thread_id & 63);
        uint64_t readers =
            stripe.readers.load(std::memory_order_acquire) & ~my_bit;
        while (readers != 0) {
            const unsigned victim = std::countr_zero(readers);
            rt_.doom(victim);
            readers &= readers - 1;
        }
        d_.redo.put(&cell, value);
        ++d_.accesses;
        if (d_.write_stripes.size() > rt_.config_.write_capacity) {
            capacity_abort();
        }
    }

    [[noreturn]] void
    retry() override
    {
        d_.stats.bump(tm::stat::kEagerAborts);
        d_.last_abort = obs::AbortReason::kExplicitRetry;
        throw tm::TxAbortException{};
    }

  private:
    void
    check_doom_and_capacity()
    {
        if (rt_.doomed_[d_.thread_id].load(std::memory_order_acquire) ||
            rt_.fallback_active_.load(std::memory_order_acquire)) {
            d_.stats.bump(tm::stat::kConflictAborts);
            d_.last_abort = obs::AbortReason::kConflict;
            throw tm::TxAbortException{};
        }
        if (d_.accesses > rt_.config_.read_capacity) capacity_abort();
    }

    [[noreturn]] void
    capacity_abort()
    {
        d_.stats.bump(tm::stat::kCapacityAborts);
        d_.last_abort = obs::AbortReason::kCapacity;
        throw tm::TxAbortException{};
    }

    HtmTsxSim& rt_;
    Descriptor& d_;
};

HtmTsxSim::HtmTsxSim(const HtmConfig& config)
    : config_(config), stripes_(config.stripes),
      doomed_(std::make_unique<std::atomic<uint32_t>[]>(config.max_threads)),
      descriptors_(config.max_threads)
{
    ROCOCO_CHECK(std::has_single_bit(config.stripes));
    ROCOCO_CHECK(config.max_threads <= 64);
    for (unsigned i = 0; i < config.max_threads; ++i) {
        doomed_[i].store(0, std::memory_order_relaxed);
    }
}

HtmTsxSim::~HtmTsxSim() = default;

void
HtmTsxSim::thread_init(unsigned thread_id)
{
    ROCOCO_CHECK(thread_id < config_.max_threads);
    if (!descriptors_[thread_id]) {
        descriptors_[thread_id] = std::make_unique<Descriptor>(thread_id);
    }
    tls_thread_id = thread_id;
}

void
HtmTsxSim::thread_fini()
{
    ROCOCO_CHECK(tls_thread_id != ~0u);
    Descriptor& d = *descriptors_[tls_thread_id];
    {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        stats_.add(d.stats);
    }
    d.stats = CounterBag();
    tls_thread_id = ~0u;
}

HtmTsxSim::Descriptor&
HtmTsxSim::descriptor()
{
    ROCOCO_CHECK(tls_thread_id != ~0u);
    return *descriptors_[tls_thread_id];
}

void
HtmTsxSim::doom(unsigned victim)
{
    doomed_[victim].store(1, std::memory_order_release);
}

void
HtmTsxSim::release_footprint(Descriptor& d)
{
    const uint64_t my_bit = uint64_t{1} << (d.thread_id & 63);
    for (size_t idx : d.read_stripes) {
        stripes_[idx].readers.fetch_and(~my_bit, std::memory_order_acq_rel);
    }
    const uint32_t me = d.thread_id + 1;
    for (size_t idx : d.write_stripes) {
        uint32_t expected = me;
        stripes_[idx].writer.compare_exchange_strong(
            expected, 0, std::memory_order_acq_rel);
    }
}

bool
HtmTsxSim::speculative_attempt(const std::function<void(tm::Tx&)>& body,
                               Descriptor& d)
{
    while (fallback_active_.load(std::memory_order_acquire)) {
        std::this_thread::yield();
    }
    d.reset();
    doomed_[d.thread_id].store(0, std::memory_order_release);
    TxImpl tx(*this, d);

    bool committed = false;
    try {
        body(tx);
        // Commit decision is serialized against doom() effects and the
        // fallback barrier.
        std::lock_guard<std::mutex> lock(commit_mutex_);
        if (!doomed_[d.thread_id].load(std::memory_order_acquire) &&
            !fallback_active_.load(std::memory_order_acquire)) {
            d.redo.apply();
            committed = true;
        } else {
            d.stats.bump(tm::stat::kConflictAborts);
            d.last_abort = obs::AbortReason::kConflict;
        }
    } catch (const tm::TxAbortException&) {
        // Doom/capacity/user abort: counters were bumped at the throw
        // site.
    }
    release_footprint(d);
    return committed;
}

void
HtmTsxSim::fallback_execute(const std::function<void(tm::Tx&)>& body,
                            Descriptor& d)
{
    // Global-lock fallback: exclusive, non-speculative execution.
    std::lock_guard<std::mutex> serial(fallback_mutex_);
    fallback_active_.store(1, std::memory_order_release);
    {
        // Barrier: wait out any in-flight speculative commit.
        std::lock_guard<std::mutex> barrier(commit_mutex_);
    }

    /// Direct-access Tx handle used only under the fallback lock.
    class DirectTx final : public tm::Tx
    {
      public:
        tm::Word
        load(const tm::TmCell& cell) override
        {
            return cell.value.load(std::memory_order_acquire);
        }
        void
        store(tm::TmCell& cell, tm::Word value) override
        {
            cell.value.store(value, std::memory_order_release);
        }
        [[noreturn]] void
        retry() override
        {
            throw tm::TxAbortException{};
        }
    } tx;

    try {
        body(tx);
    } catch (const tm::TxAbortException&) {
        // A retry() under the fallback lock cannot make progress by
        // waiting (we are serial); surface it as a commit of a no-op
        // retry loop by re-running the body until it succeeds.
        fallback_active_.store(0, std::memory_order_release);
        throw;
    }
    fallback_active_.store(0, std::memory_order_release);
    d.stats.bump(tm::stat::kFallbackCommits);
    d.stats.bump(tm::stat::kCommits);
}

bool
HtmTsxSim::try_execute(const std::function<void(tm::Tx&)>& body)
{
    Descriptor& d = descriptor();
    if (d.failed_attempts > config_.retries) {
        try {
            fallback_execute(body, d);
            d.failed_attempts = 0;
            return true;
        } catch (const tm::TxAbortException&) {
            // retry() under the fallback lock: go back to speculation so
            // other threads can change the awaited state.
            d.failed_attempts = 0;
            d.stats.bump(tm::stat::kAborts);
            return false;
        }
    }
    if (speculative_attempt(body, d)) {
        d.failed_attempts = 0;
        d.stats.bump(tm::stat::kCommits);
        return true;
    }
    ++d.failed_attempts;
    d.stats.bump(tm::stat::kAborts);
    return false;
}

CounterBag
HtmTsxSim::stats() const
{
    std::lock_guard<std::mutex> lock(stats_mutex_);
    return stats_;
}

obs::AbortReason
HtmTsxSim::last_abort_reason() const
{
    if (tls_thread_id == ~0u || !descriptors_[tls_thread_id]) {
        return obs::AbortReason::kUnknown;
    }
    return descriptors_[tls_thread_id]->last_abort;
}

} // namespace rococo::baselines
