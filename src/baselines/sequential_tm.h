/// @file
/// Sequential (no-instrumentation) TM for single-threaded use: the
/// "sequential execution" every Fig. 10 speedup is measured against.
/// Accesses go straight to memory; there is no rollback, so bodies run
/// at native speed exactly like STAMP's sequential build.
#pragma once

#include "common/stats.h"
#include "tm/tm.h"

namespace rococo::baselines {

class SequentialTm final : public tm::TmRuntime
{
  public:
    std::string name() const override { return "Sequential"; }

    void thread_init(unsigned) override {}
    void thread_fini() override {}

    CounterBag
    stats() const override
    {
        return stats_;
    }

    /// Sequential execution only aborts on a body-requested retry().
    obs::AbortReason
    last_abort_reason() const override
    {
        return obs::AbortReason::kExplicitRetry;
    }

  protected:
    bool try_execute(const std::function<void(tm::Tx&)>& body) override;

  private:
    CounterBag stats_;
};

} // namespace rococo::baselines
