/// @file
/// Redo log: the lazy version management of ROCoCoTM (§5.1). Tentative
/// writes are buffered here during execution and written back to the
/// actual locations by the Committer after the FPGA approves.
#pragma once

#include <cstdint>
#include <vector>

#include "tm/tm.h"

namespace rococo::tm {

/// Insertion-ordered address -> value buffer with O(1) lookup via a
/// small open-addressing index. Cleared (not freed) between attempts so
/// steady-state transactions allocate nothing.
class RedoLog
{
  public:
    RedoLog();

    size_t size() const { return entries_.size(); }
    bool empty() const { return entries_.empty(); }

    /// Insert or overwrite the buffered value for @p cell.
    void put(TmCell* cell, Word value);

    /// Fetch the buffered value; returns false if @p cell was never
    /// written this transaction.
    bool get(const TmCell* cell, Word& value) const;

    /// Write every buffered value to its cell (release order), in
    /// insertion order.
    void apply() const;

    void clear();

    /// Written cells in insertion order (for building write sets).
    struct Entry
    {
        TmCell* cell;
        Word value;
    };
    const std::vector<Entry>& entries() const { return entries_; }

  private:
    void rehash(size_t buckets);
    size_t find_slot(const TmCell* cell) const;

    std::vector<Entry> entries_;
    /// Open-addressing index: bucket -> entry index + 1, 0 = empty.
    std::vector<uint32_t> index_;
    size_t mask_ = 0;
};

} // namespace rococo::tm
