#include "tm/tx_descriptor.h"

namespace rococo::tm {

TxDescriptor::TxDescriptor(std::shared_ptr<const sig::SignatureConfig> config,
                           unsigned thread_id_in)
    : thread_id(thread_id_in), read_set(config), write_sig(config),
      redo(), miss_set(config), temp_set(config)
{
}

void
TxDescriptor::reset(uint64_t now_ts)
{
    read_set.clear();
    write_sig.clear();
    redo.clear();
    local_ts = now_ts;
    valid_ts = now_ts;
    miss_set.clear();
    miss_active = false;
    temp_set.clear();
    user_retry = false;
    last_abort = obs::AbortReason::kNone;
    last_conflict_cid = core::kNoConflictCid;
}

} // namespace rococo::tm
