#include "tm/tx_descriptor.h"

namespace rococo::tm {

TxDescriptor::TxDescriptor(std::shared_ptr<const sig::SignatureConfig> config,
                           unsigned thread_id_in)
    : thread_id(thread_id_in), read_set(config), write_sig(config),
      redo(), miss_set(config), temp_set(config)
{
    hot.commits = &stats.counter(stat::kCommits);
    hot.aborts = &stats.counter(stat::kAborts);
    hot.read_only_commits = &stats.counter(stat::kReadOnlyCommits);
    hot.eager_aborts = &stats.counter(stat::kEagerAborts);
    hot.validation_aborts = &stats.counter(stat::kValidationAborts);
    hot.cycle_aborts = &stats.counter(stat::kCycleAborts);
    hot.overflow_aborts = &stats.counter(stat::kOverflowAborts);
    hot.stale_aborts = &stats.counter(stat::kStaleAborts);
    hot.timeout_aborts = &stats.counter(stat::kTimeoutAborts);
    hot.rejected_aborts = &stats.counter(stat::kRejectedAborts);
    hot.conflict_attributed = &stats.counter(stat::kConflictAttributed);
    hot.irrevocable_commits = &stats.counter("irrevocable_commits");
}

void
TxDescriptor::reset(uint64_t now_ts)
{
    read_set.clear();
    write_sig.clear();
    redo.clear();
    local_ts = now_ts;
    valid_ts = now_ts;
    miss_set.clear();
    miss_active = false;
    temp_set.clear();
    user_retry = false;
    last_abort = obs::AbortReason::kNone;
    last_conflict_cid = core::kNoConflictCid;
}

} // namespace rococo::tm
