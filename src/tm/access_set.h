/// @file
/// Read/write set bookkeeping for ROCoCoTM's CPU side (§5.2-5.3).
///
/// The read set keeps the exact address list (shipped to the FPGA for
/// precise per-address queries), a whole-set signature for the O(1)
/// fast path of the eager conflict check, and one sub-signature per
/// group of eight addresses — the paper's refinement that keeps false
/// positivity of set intersection low, since intersections are only
/// meaningful on signatures of at most eight elements (Fig. 7, §5.3).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "sig/bloom_signature.h"

namespace rococo::tm {

/// An address set with layered signatures.
class AccessSet
{
  public:
    /// Paper: a sub-signature summarizes every eight addresses.
    static constexpr size_t kSubsetSize = 8;

    explicit AccessSet(std::shared_ptr<const sig::SignatureConfig> config);

    void insert(uintptr_t addr);

    bool empty() const { return addrs_.empty(); }
    size_t size() const { return addrs_.size(); }

    const std::vector<uintptr_t>& addresses() const { return addrs_; }
    const sig::BloomSignature& signature() const { return whole_; }

    /// Does the whole-set signature intersect @p other? O(1), may be a
    /// false positive.
    bool may_intersect(const sig::BloomSignature& other) const;

    /// Refined check: test each address against @p other's membership
    /// query (O(size), only run after may_intersect fires). Still
    /// conservative — @p other is itself a bloom filter — but much
    /// tighter than signature intersection.
    bool confirmed_intersect(const sig::BloomSignature& other) const;

    /// Sub-signatures (one per eight inserted addresses), exposed for
    /// tests of the layered scheme.
    std::span<const sig::BloomSignature> sub_signatures() const
    {
        return {subs_.data(), sub_count_};
    }

    void clear();

  private:
    std::shared_ptr<const sig::SignatureConfig> config_;
    std::vector<uintptr_t> addrs_;
    sig::BloomSignature whole_;
    /// Sub-signature pool: grown to the high-water group count and kept
    /// across clear() so a steady-state transaction never constructs a
    /// signature; only the first sub_count_ entries are live.
    std::vector<sig::BloomSignature> subs_;
    size_t sub_count_ = 0;
};

} // namespace rococo::tm
