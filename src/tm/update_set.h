/// @file
/// The update set: ROCoCoTM's commit-time locking (§5.3).
///
/// Before writing back, a committing transaction publishes its write
/// signature into its slot; executing transactions poll the union of
/// active slots before every transactional read (Algorithm 1 line 5)
/// and wait while a committer may be mid-write to the address. This
/// preserves isolation between committing and executing transactions
/// without any per-location metadata, and without atomics on the read
/// fast path beyond a few loads.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "sig/bloom_signature.h"

namespace rococo::tm {

class UpdateSet
{
  public:
    /// @param config signature geometry
    /// @param slots maximum concurrent committers (>= worker threads)
    UpdateSet(std::shared_ptr<const sig::SignatureConfig> config,
              unsigned slots = 64);

    unsigned slots() const { return static_cast<unsigned>(slots_.size()); }

    /// Publish @p write_sig as slot @p slot's active signature.
    void publish(unsigned slot, const sig::BloomSignature& write_sig);

    /// Deactivate slot @p slot.
    void clear(unsigned slot);

    /// May any active committer be writing @p addr?
    bool query(uint64_t addr) const;

  private:
    struct Slot
    {
        std::atomic<uint32_t> active{0};
        std::vector<std::atomic<uint64_t>> words;
    };

    std::shared_ptr<const sig::SignatureConfig> config_;
    std::vector<Slot> slots_;
};

} // namespace rococo::tm
