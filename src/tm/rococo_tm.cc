#include "tm/rococo_tm.h"

#include <thread>

#include "common/check.h"
#include "obs/telemetry.h"
#include "obs/tracer.h"
#include "shard/router.h"
#include "svc/client.h"

namespace rococo::tm {
namespace {

/// Per-thread binding of this runtime's descriptor index.
thread_local unsigned tls_thread_id = ~0u;

uint64_t
cell_key(const TmCell& cell)
{
    return static_cast<uint64_t>(reinterpret_cast<uintptr_t>(&cell));
}

/// Config-selected validation backend: in-process pipeline by default,
/// a sharded router when validation_shards > 1, service client when a
/// socket path is configured.
std::unique_ptr<fpga::ValidationBackend>
make_backend(const RococoTmConfig& config)
{
    if (config.validation_service.empty()) {
        if (config.validation_shards > 1) {
            shard::ShardConfig sharded;
            sharded.shards = config.validation_shards;
            sharded.engine = config.engine;
            return std::make_unique<shard::ShardRouter>(sharded);
        }
        return std::make_unique<fpga::ValidationPipeline>(config.engine);
    }
    svc::ClientConfig client;
    client.socket_path = config.validation_service;
    client.engine = config.engine;
    auto backend = std::make_unique<svc::ValidationClient>(client);
    // A disconnected client resolves every validate() as kRejected, so
    // a wrong or unreachable socket path would silently retry forever;
    // fail construction loudly instead.
    ROCOCO_CHECK(backend->connected() &&
                 "validation service unreachable at "
                 "RococoTmConfig::validation_service");
    return backend;
}

} // namespace

/// The Tx handle: Algorithm 1's TM_READ / TM_WRITE.
class RococoTm::TxImpl final : public Tx
{
  public:
    TxImpl(RococoTm& rt, TxDescriptor& d)
        : rt_(rt), d_(d)
    {
    }

    Word
    load(const TmCell& cell) override
    {
        // Read-after-write: serve from the redo log (lines 1-4).
        Word value;
        if (!d_.redo.empty() && d_.redo.get(&cell, value)) return value;

        const uint64_t addr = cell_key(cell);
        for (unsigned spin = 0;; ++spin) {
            value = cell.value.load(std::memory_order_acquire);

            // Commit-time lock check AFTER the speculative load: if no
            // committer holds addr now, either the value predates any
            // in-flight commit of it, or that commit already advanced
            // GlobalTS and the snapshot scan below will catch it
            // (line 5).
            if (rt_.update_set_.query(addr)) {
                if (d_.miss_active) {
                    abort_tx(*d_.hot.eager_aborts,
                             obs::AbortReason::kLockedConflict);
                }
                std::this_thread::yield();
                continue;
            }

            const uint64_t gts = rt_.commit_log_.global_ts();
            if (d_.local_ts < gts) {
                const uint64_t prev_local = d_.local_ts;
                // Snapshot extension (lines 9-13): union the write
                // signatures of commits [LocalTS, GlobalTS).
                d_.temp_set.clear();
                if (!rt_.commit_log_.collect(d_.local_ts, gts,
                                             d_.temp_set)) {
                    abort_tx(*d_.hot.stale_aborts,
                             obs::AbortReason::kSnapshotStale);
                }
                d_.local_ts = gts;

                // Lines 14-19: if a previous read may have been
                // invalidated, the snapshot cannot be extended — fold
                // the missed updates into MissSet.
                const bool read_conflict =
                    d_.read_set.may_intersect(d_.temp_set) &&
                    d_.read_set.confirmed_intersect(d_.temp_set);
                if (d_.miss_active || read_conflict) {
                    d_.miss_set.unite(d_.temp_set);
                    d_.miss_active = true;
                } else {
                    d_.valid_ts = gts;
                }
                if (d_.temp_set.query(addr)) {
                    // addr itself was just updated: the loaded value's
                    // vintage is ambiguous; re-read with the advanced
                    // snapshot (or abort if the snapshot is broken).
                    if (d_.miss_active && d_.miss_set.query(addr)) {
                        abort_eager_conflict(prev_local, gts, addr);
                    }
                    continue;
                }
            }
            if (d_.miss_active && d_.miss_set.query(addr)) {
                // Reading an address in the miss set: no consistent
                // snapshot exists (Fig. 8 (d)).
                abort_eager_conflict(d_.valid_ts, d_.local_ts, addr);
            }
            break;
        }
        d_.read_set.insert(addr);
        return value;
    }

    void
    store(TmCell& cell, Word value) override
    {
        // Lines 21-22: buffer the tentative write.
        d_.write_sig.insert(cell_key(cell));
        d_.redo.put(&cell, value);
    }

    [[noreturn]] void
    retry() override
    {
        d_.user_retry = true;
        abort_tx(*d_.hot.eager_aborts, obs::AbortReason::kExplicitRetry);
    }

  private:
    [[noreturn]] void
    abort_tx(obs::Counter& counter, obs::AbortReason reason)
    {
        counter.add(1);
        d_.last_abort = reason;
        throw TxAbortException{};
    }

    /// kEagerConflict abort with provenance: name the commit in
    /// [from, to) whose write signature covers @p addr (the update that
    /// broke the snapshot). Abort path only — successful loads never
    /// scan.
    [[noreturn]] void
    abort_eager_conflict(uint64_t from, uint64_t to, uint64_t addr)
    {
        d_.last_conflict_cid =
            rt_.commit_log_.find_conflicting(from, to, addr);
        if (d_.last_conflict_cid != core::kNoConflictCid) {
            d_.hot.conflict_attributed->add(1);
        }
        abort_tx(*d_.hot.eager_aborts, obs::AbortReason::kEagerConflict);
    }

    RococoTm& rt_;
    TxDescriptor& d_;
};

RococoTm::RococoTm(const RococoTmConfig& config)
    : config_(config), backend_(make_backend(config)),
      sig_config_(backend_->signature_config()),
      commit_log_(sig_config_, config.commit_log_capacity),
      update_set_(sig_config_, config.max_threads),
      descriptors_(config.max_threads)
{
    if (config_.recorder.enabled) {
        obs::FlightRecorderConfig rec = config_.recorder;
        if (rec.abort_counters.empty()) rec.abort_counters = {stat::kAborts};
        if (rec.total_counters.empty()) {
            rec.total_counters = {stat::kCommits, stat::kAborts};
        }
        // Every worker thread writes spans here — a trace-including
        // dump would race the rings (see obs/flight_recorder.h).
        rec.include_trace = false;
        recorder_ = std::make_unique<obs::FlightRecorder>(
            std::move(rec), [this](obs::Registry& out) {
                out.merge(registry_);
                {
                    // Live view: fold in the per-thread registries that
                    // have not reached thread_fini yet (their counters
                    // are atomic; merge reads them concurrently).
                    std::lock_guard<std::mutex> lock(descriptor_mutex_);
                    for (const auto& d : descriptors_) {
                        if (d) out.merge(d->stats);
                    }
                }
                backend_->export_metrics(out);
            });
        if (auto* pipeline =
                dynamic_cast<fpga::ValidationPipeline*>(backend_.get())) {
            pipeline->attach_flight_recorder(recorder_.get());
            recorder_->set_topk_source([pipeline](std::string* out) {
                pipeline->topk_json(out);
            });
        } else if (auto* router =
                       dynamic_cast<shard::ShardRouter*>(backend_.get())) {
            recorder_->set_topk_source(
                [router](std::string* out) { router->topk_json(out); });
        }
    }
    if (config_.monitor.enabled) {
        // Live cumulative sum of one per-thread counter: the merged
        // registry (threads past thread_fini) plus the descriptors
        // still running. Registry::get is a mutex-guarded map lookup —
        // fine at sampling cadence, never on the transaction path.
        auto live_sum = [this](const char* name) {
            double total = double(registry_.get(name));
            std::lock_guard<std::mutex> lock(descriptor_mutex_);
            for (const auto& d : descriptors_) {
                if (d) total += double(d->stats.get(name));
            }
            return total;
        };
        const obs::MonitorConfig& mon = config_.monitor;
        obs::MetricSamplerConfig sampler;
        sampler.sample_period_ns = mon.sample_period_ns;
        sampler.ring_capacity = mon.ring_capacity;
        obs::SeriesSpec commit_rate;
        commit_rate.name = "tm.commit_rate";
        commit_rate.kind = obs::SeriesKind::kCounter;
        commit_rate.callback = [live_sum] { return live_sum(stat::kCommits); };
        sampler.series.push_back(std::move(commit_rate));
        obs::SeriesSpec abort_rate;
        abort_rate.name = "tm.abort_rate";
        abort_rate.kind = obs::SeriesKind::kRatio;
        abort_rate.callback = [live_sum] { return live_sum(stat::kAborts); };
        abort_rate.weight_callback = [live_sum] {
            return live_sum(stat::kCommits) + live_sum(stat::kAborts);
        };
        sampler.series.push_back(std::move(abort_rate));

        obs::SloEngineConfig slo;
        if (mon.abort_rate_threshold > 0) {
            obs::SloRule rule;
            rule.name = "abort-rate";
            rule.series = "tm.abort_rate";
            rule.threshold = mon.abort_rate_threshold;
            rule.fast_window_ns = mon.fast_window_ns;
            rule.slow_window_ns = mon.slow_window_ns;
            rule.recovery_samples = mon.recovery_samples;
            // An idle runtime must not alarm: require a handful of
            // attempts per fast window before the ratio means anything.
            rule.min_weight = 16.0;
            slo.rules.push_back(std::move(rule));
        }
        monitor_ = std::make_unique<obs::HealthMonitor>(std::move(sampler),
                                                        std::move(slo));
        if (recorder_) monitor_->set_incident_recorder(recorder_.get());
    }
}

RococoTm::~RococoTm()
{
    backend_->stop();
    if (obs::telemetry_active()) {
        // Hand the backend-side occupancy gauges and verdict counters
        // to the session being recorded before they are destroyed.
        backend_->export_metrics(obs::Registry::global());
    }
}

void
RococoTm::thread_init(unsigned thread_id)
{
    ROCOCO_CHECK(thread_id < config_.max_threads);
    {
        std::lock_guard<std::mutex> lock(descriptor_mutex_);
        if (!descriptors_[thread_id]) {
            descriptors_[thread_id] =
                std::make_unique<TxDescriptor>(sig_config_, thread_id);
        }
    }
    tls_thread_id = thread_id;
}

void
RococoTm::thread_fini()
{
    ROCOCO_CHECK(tls_thread_id != ~0u);
    TxDescriptor& d = *descriptors_[tls_thread_id];
    registry_.merge(d.stats);
    d.stats.reset();
    tls_thread_id = ~0u;
}

TxDescriptor&
RococoTm::descriptor()
{
    ROCOCO_CHECK(tls_thread_id != ~0u);
    return *descriptors_[tls_thread_id];
}

bool
RococoTm::try_execute(const std::function<void(Tx&)>& body)
{
    TxDescriptor& d = descriptor();

    if (config_.irrevocable_after != 0 &&
        d.consecutive_aborts >= config_.irrevocable_after) {
        // Starvation escape hatch (§4.2): drain all concurrent
        // transactions and run alone. With no concurrency the snapshot
        // stays current, no forward edges arise, and validation cannot
        // fail — the attempt below must commit.
        std::unique_lock<std::shared_mutex> exclusive(gate_);
        const bool committed = attempt(body, d);
        if (!committed) {
            // Only a body-requested retry() — or, with a service
            // backend, a transport failure (timeout / backpressure) —
            // can fail here: running alone, validation cannot. Fall
            // back to optimistic mode either way.
            ROCOCO_CHECK((d.user_retry ||
                          d.last_abort == obs::AbortReason::kTimeout ||
                          d.last_abort == obs::AbortReason::kBackpressure) &&
                         "irrevocable attempt must commit");
            d.consecutive_aborts = 0;
            return false;
        }
        d.consecutive_aborts = 0;
        d.hot.irrevocable_commits->add(1);
        return true;
    }

    std::shared_lock<std::shared_mutex> shared(gate_);
    const bool committed = attempt(body, d);
    d.consecutive_aborts = committed ? 0 : d.consecutive_aborts + 1;
    return committed;
}

bool
RococoTm::attempt(const std::function<void(Tx&)>& body, TxDescriptor& d)
{
    // One recorder + monitor tick per attempt: cheap when no sample is
    // due, and try_lock inside keeps concurrent workers from
    // contending.
    if (recorder_ || monitor_) {
        const uint64_t tick_ns = obs::now_ns();
        if (recorder_) recorder_->tick(tick_ns);
        if (monitor_) monitor_->tick(tick_ns);
    }
    d.reset(commit_log_.global_ts());
    TxImpl tx(*this, d);

    try {
        obs::ScopedSpan execute_span("tm", "tx.execute");
        body(tx);
    } catch (const TxAbortException&) {
        d.hot.aborts->add(1);
        return false;
    }

    if (d.redo.empty()) {
        // Read-only fast path: the snapshot stayed consistent at
        // valid_ts, commit directly on the CPU (§5.3).
        TRACE_INSTANT("tm", "tx.readonly_commit");
        d.hot.commits->add(1);
        d.hot.read_only_commits->add(1);
        return true;
    }

    // Ship R/W sets and ValidTS to the validation pipeline and wait
    // for the verdict (Fig. 6).
    fpga::OffloadRequest request;
    {
        TRACE_SPAN("tm", "tx.ship");
        request.reads = d.read_set.addresses();
        request.writes.reserve(d.redo.size());
        for (const auto& entry : d.redo.entries()) {
            request.writes.push_back(cell_key(*entry.cell));
        }
        request.snapshot_cid = d.valid_ts;
    }

    core::ValidationResult verdict;
    {
        obs::ScopedSpan validate_span("tm", "tx.validate");
        verdict =
            config_.validation_timeout_ns > 0
                ? backend_->validate(
                      std::move(request),
                      std::chrono::nanoseconds(config_.validation_timeout_ns))
                : backend_->validate(std::move(request));
        if (verdict.verdict == core::Verdict::kCommit) {
            validate_span.arg("cid", verdict.cid);
        }
    }
    if (verdict.verdict != core::Verdict::kCommit) {
        d.last_abort = verdict.reason == obs::AbortReason::kNone
                           ? obs::AbortReason::kUnknown
                           : verdict.reason;
        // Abort provenance shipped with the verdict: the committed cid
        // this attempt collided with (engine-local, wire or sharded —
        // all carry it in ValidationResult::conflict_cid).
        d.last_conflict_cid = verdict.conflict_cid;
        if (verdict.conflict_cid != core::kNoConflictCid) {
            d.hot.conflict_attributed->add(1);
        }
        d.hot.aborts->add(1);
        d.hot.validation_aborts->add(1);
        switch (verdict.verdict) {
          case core::Verdict::kAbortCycle:
            d.hot.cycle_aborts->add(1);
            break;
          case core::Verdict::kWindowOverflow:
            d.hot.overflow_aborts->add(1);
            break;
          case core::Verdict::kTimeout:
            d.hot.timeout_aborts->add(1);
            break;
          default:
            d.hot.rejected_aborts->add(1);
            break;
        }
        return false;
    }

    // Committer (§5.3): commit-time locking, in-cid-order write-back.
    const uint64_t cid = verdict.cid;
    {
        obs::ScopedSpan commit_span("tm", "tx.commit", "cid", cid);
        update_set_.publish(d.thread_id, d.write_sig);
        {
            TRACE_SPAN("tm", "tx.commit_lock");
            commit_log_.wait_turn(cid);
        }
        {
            TRACE_SPAN("tm", "tx.writeback");
            d.redo.apply();
        }
        commit_log_.publish(cid, d.write_sig);
        commit_log_.advance(cid);
        update_set_.clear(d.thread_id);
    }

    d.hot.commits->add(1);
    return true;
}

CounterBag
RococoTm::stats() const
{
    return registry_.to_counter_bag();
}

obs::AbortReason
RococoTm::last_abort_reason() const
{
    if (tls_thread_id == ~0u || !descriptors_[tls_thread_id]) {
        return obs::AbortReason::kUnknown;
    }
    return descriptors_[tls_thread_id]->last_abort;
}

uint64_t
RococoTm::last_conflict_cid() const
{
    if (tls_thread_id == ~0u || !descriptors_[tls_thread_id]) {
        return core::kNoConflictCid;
    }
    return descriptors_[tls_thread_id]->last_conflict_cid;
}

} // namespace rococo::tm
