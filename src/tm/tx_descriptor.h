/// @file
/// Per-thread transaction descriptor of ROCoCoTM (§5.3): private
/// read/write bookkeeping (R/W-set + redo log), the LSA snapshot state
/// (LocalTS / ValidTS) and the miss/temp signatures of Algorithm 1.
#pragma once

#include <cstdint>
#include <memory>

#include "core/sliding_window.h"
#include "obs/abort_reason.h"
#include "obs/registry.h"
#include "sig/bloom_signature.h"
#include "tm/access_set.h"
#include "tm/redo_log.h"

namespace rococo::tm {

struct TxDescriptor
{
    explicit TxDescriptor(
        std::shared_ptr<const sig::SignatureConfig> config,
        unsigned thread_id);

    /// Reset all per-attempt state; the transaction starts with a
    /// snapshot at @p now_ts (the current GlobalTS).
    void reset(uint64_t now_ts);

    unsigned thread_id;

    AccessSet read_set;
    sig::BloomSignature write_sig;
    RedoLog redo;

    /// Timestamps of the lazy snapshot algorithm: reads are consistent
    /// with the state at valid_ts; commits up to local_ts have been
    /// examined.
    uint64_t local_ts = 0;
    uint64_t valid_ts = 0;

    /// Signatures of missed updates (Fig. 8 (c)); miss_active mirrors
    /// "MissSet != empty" (signatures cannot be tested for emptiness
    /// reliably once united).
    sig::BloomSignature miss_set;
    bool miss_active = false;

    /// Scratch for the TempSet union of Algorithm 1.
    sig::BloomSignature temp_set;

    /// Consecutive aborts of the transaction currently being retried
    /// (drives the irrevocability escape hatch).
    unsigned consecutive_aborts = 0;

    /// The current attempt aborted because the body called
    /// Tx::retry() (a condition wait, not a conflict).
    bool user_retry = false;

    /// Typed cause of the most recent abort of this attempt (kNone
    /// after reset and on commit); drives the per-reason telemetry.
    obs::AbortReason last_abort = obs::AbortReason::kNone;

    /// Abort provenance: the committed cid the most recent abort
    /// collided with — from the validation verdict (kValidationCycle /
    /// kCrossShardFence) or a commit-log scan (kEagerConflict).
    /// core::kNoConflictCid when the abort names no commit.
    uint64_t last_conflict_cid = core::kNoConflictCid;

    /// Thread-local metrics, merged into the runtime's registry at
    /// thread_fini (counters carry the legacy stat:: names so the
    /// CounterBag-returning stats() API is unchanged).
    obs::Registry stats;

    /// Outcome counters resolved once at construction: the attempt path
    /// bumps through these pointers instead of string-keyed registry
    /// lookups (several stat:: names exceed std::string's SSO, so a
    /// by-name bump would allocate on every committed transaction).
    /// They point into `stats`, whose references stay valid across
    /// reset()/merge().
    struct HotCounters
    {
        obs::Counter* commits;
        obs::Counter* aborts;
        obs::Counter* read_only_commits;
        obs::Counter* eager_aborts;
        obs::Counter* validation_aborts;
        obs::Counter* cycle_aborts;
        obs::Counter* overflow_aborts;
        obs::Counter* stale_aborts;
        obs::Counter* timeout_aborts;
        obs::Counter* rejected_aborts;
        obs::Counter* conflict_attributed;
        obs::Counter* irrevocable_commits;
    };
    HotCounters hot;
};

} // namespace rococo::tm
