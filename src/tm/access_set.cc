#include "tm/access_set.h"

namespace rococo::tm {

AccessSet::AccessSet(std::shared_ptr<const sig::SignatureConfig> config)
    : config_(config), whole_(config)
{
}

void
AccessSet::insert(uintptr_t addr)
{
    if (addrs_.size() % kSubsetSize == 0) {
        subs_.emplace_back(config_);
    }
    addrs_.push_back(addr);
    whole_.insert(addr);
    subs_.back().insert(addr);
}

bool
AccessSet::may_intersect(const sig::BloomSignature& other) const
{
    // Per-partition intersection: a real common element sets one bit
    // in every partition, and the partitioned test has a far lower
    // false-overlap rate than the any-bit AND (Fig. 7 (b)).
    return whole_.intersects_all_partitions(other);
}

bool
AccessSet::confirmed_intersect(const sig::BloomSignature& other) const
{
    // Walk sub-signatures first (cheap dismissal of whole groups), then
    // per-address membership queries inside matching groups.
    for (size_t g = 0; g < subs_.size(); ++g) {
        if (!subs_[g].intersects(other)) continue;
        const size_t begin = g * kSubsetSize;
        const size_t end = std::min(begin + kSubsetSize, addrs_.size());
        for (size_t i = begin; i < end; ++i) {
            if (other.query(addrs_[i])) return true;
        }
    }
    return false;
}

void
AccessSet::clear()
{
    addrs_.clear();
    whole_.clear();
    subs_.clear();
}

} // namespace rococo::tm
