#include "tm/access_set.h"

namespace rococo::tm {

AccessSet::AccessSet(std::shared_ptr<const sig::SignatureConfig> config)
    : config_(config), whole_(config)
{
}

void
AccessSet::insert(uintptr_t addr)
{
    if (addrs_.size() % kSubsetSize == 0) {
        // Open the next group: reuse a pooled signature (cleared lazily
        // here, not in clear(), so an unused pool tail costs nothing).
        if (sub_count_ == subs_.size()) {
            subs_.emplace_back(config_);
        } else {
            subs_[sub_count_].clear();
        }
        ++sub_count_;
    }
    addrs_.push_back(addr);
    whole_.insert(addr);
    subs_[sub_count_ - 1].insert(addr);
}

bool
AccessSet::may_intersect(const sig::BloomSignature& other) const
{
    // Per-partition intersection: a real common element sets one bit
    // in every partition, and the partitioned test has a far lower
    // false-overlap rate than the any-bit AND (Fig. 7 (b)).
    return whole_.intersects_all_partitions(other);
}

bool
AccessSet::confirmed_intersect(const sig::BloomSignature& other) const
{
    // Walk sub-signatures first (cheap dismissal of whole groups), then
    // per-address membership queries inside matching groups.
    for (size_t g = 0; g < sub_count_; ++g) {
        if (!subs_[g].intersects(other)) continue;
        const size_t begin = g * kSubsetSize;
        const size_t end = std::min(begin + kSubsetSize, addrs_.size());
        for (size_t i = begin; i < end; ++i) {
            if (other.query(addrs_[i])) return true;
        }
    }
    return false;
}

void
AccessSet::clear()
{
    addrs_.clear();
    whole_.clear();
    sub_count_ = 0; // pool entries stay allocated for reuse
}

} // namespace rococo::tm
