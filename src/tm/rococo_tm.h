/// @file
/// ROCoCoTM: the hybrid TM of §5 — eager CPU-side conflict detection on
/// bloom-filter signatures (Algorithm 1), lazy version management
/// (redo log + commit-time write-back), commit-time locking via the
/// update set, and validation offloaded to the (software-modelled) FPGA
/// pipeline.
///
/// Lifecycle of a writing transaction (Fig. 6 (a)/(b)):
///   Executor (CPU): run the body; every load maintains the lazy
///     snapshot (LocalTS/ValidTS/MissSet) against the commit log and
///     aborts early on inconsistency — "fast path for true conflicts
///     without any atomic operation".
///   Detector+Manager (FPGA): the read/write address sets and ValidTS
///     are shipped over the pull queue; the pipeline classifies
///     dependencies and runs the ROCoCo reachability check.
///   Committer (CPU): on approval, publishes the write signature to the
///     update set, waits its cid turn, applies the redo log, appends
///     its signature to the commit log and advances GlobalTS.
///
/// Read-only transactions commit directly on the CPU (§5.3).
#pragma once

#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "fpga/validation_backend.h"
#include "fpga/validation_pipeline.h"
#include "obs/flight_recorder.h"
#include "obs/health.h"
#include "tm/commit_log.h"
#include "tm/tm.h"
#include "tm/tx_descriptor.h"
#include "tm/update_set.h"

namespace rococo::tm {

struct RococoTmConfig
{
    fpga::EngineConfig engine;
    size_t commit_log_capacity = 1 << 14;
    unsigned max_threads = 64;
    /// Starvation escape hatch (§4.2: "to ensure long transactions can
    /// eventually commit, irrevocability may be required"): after this
    /// many consecutive aborts a transaction runs irrevocably —
    /// exclusively, with every other transaction drained — and is
    /// guaranteed to commit. 0 disables irrevocability.
    unsigned irrevocable_after = 64;
    /// Unix-socket path of a svc::Server to validate against. Empty
    /// (the default) keeps validation in-process: the runtime owns a
    /// ValidationPipeline, the single-address-space deployment of
    /// Fig. 6 (b). Non-empty swaps in a svc::ValidationClient, sharing
    /// the server's sliding window with every other client process —
    /// the engine geometry below must match the server's, and the
    /// server must be reachable when the runtime is constructed
    /// (ROCOCO_CHECK aborts otherwise: a disconnected backend would
    /// reject every validation and retry silently forever).
    std::string validation_service;
    /// Number of validation shards for the in-process deployment. 1
    /// (the default) keeps the single-engine ValidationPipeline; > 1
    /// swaps in a shard::ShardRouter that hash-partitions the address
    /// space across that many engines with cross-shard two-phase
    /// coordination (src/shard/router.h). Ignored when
    /// validation_service is set — the service server owns the shard
    /// count there (svc::ServerConfig::shards).
    uint32_t validation_shards = 1;
    /// Per-validation deadline in ns; 0 waits indefinitely. On expiry
    /// the attempt aborts with obs::AbortReason::kTimeout and retries —
    /// the verdict the backend eventually produces is discarded, which
    /// is safe precisely because the attempt aborts (never
    /// half-commits).
    uint64_t validation_timeout_ns = 0;
    /// Flight recorder (obs/flight_recorder.h). recorder.enabled = true
    /// makes the runtime own one, ticked once per finished attempt;
    /// empty watch lists default to the TM series (aborts / commits +
    /// aborts). recorder.include_trace stays unsafe here — every worker
    /// thread writes spans, so leave it false (the runtime forces it
    /// off).
    obs::FlightRecorderConfig recorder;
    /// Continuous monitoring (obs/health.h). Opt-in here (the default
    /// below overrides MonitorConfig's service-side default of on),
    /// like the recorder: an embedding application owns the choice.
    /// When enabled, the sampler tracks tm.commit_rate (commits/s) and
    /// tm.abort_rate (aborts per attempt, live across the per-thread
    /// descriptor registries) off the same per-attempt tick the
    /// recorder uses, and a critical abort-rate SLO dumps an incident
    /// through the recorder when both are armed.
    obs::MonitorConfig monitor{.enabled = false};
};

class RococoTm final : public TmRuntime
{
  public:
    explicit RococoTm(const RococoTmConfig& config = {});
    ~RococoTm() override;

    std::string name() const override { return "ROCoCoTM"; }

    void thread_init(unsigned thread_id) override;
    void thread_fini() override;

    CounterBag stats() const override;

    /// Typed cause of the calling thread's most recent abort.
    obs::AbortReason last_abort_reason() const override;

    /// Abort provenance: the committed cid the calling thread's most
    /// recent abort collided with, or core::kNoConflictCid. Meaningful
    /// under the same contract as last_abort_reason().
    uint64_t last_conflict_cid() const;

    /// The runtime's flight recorder, or nullptr when
    /// RococoTmConfig::recorder.enabled is false (manual dumps, tests).
    obs::FlightRecorder* flight_recorder() { return recorder_.get(); }

    /// The runtime's health monitor, or nullptr when
    /// RococoTmConfig::monitor.enabled is false (series inspection,
    /// tests).
    obs::HealthMonitor* health_monitor() { return monitor_.get(); }

    /// Validation-backend verdict counters (the dotted line of
    /// Fig. 10); pipeline- or client-side depending on config.
    CounterBag fpga_stats() const { return backend_->stats(); }

    /// Full metrics registry behind stats() (per-thread registries
    /// merged at thread_fini).
    const obs::Registry& registry() const { return registry_; }

  protected:
    bool try_execute(const std::function<void(Tx&)>& body) override;

  private:
    class TxImpl;

    TxDescriptor& descriptor();

    /// One attempt through the normal path; assumes the caller holds
    /// the execution gate (shared or exclusive).
    bool attempt(const std::function<void(Tx&)>& body, TxDescriptor& d);

    RococoTmConfig config_;
    std::unique_ptr<fpga::ValidationBackend> backend_;
    std::shared_ptr<const sig::SignatureConfig> sig_config_;
    CommitLog commit_log_;
    UpdateSet update_set_;

    /// Execution gate: normal transactions hold it shared; an
    /// irrevocable transaction holds it exclusively, so it runs alone
    /// and its validation cannot fail.
    std::shared_mutex gate_;

    obs::Registry registry_; ///< merged per-thread metrics (thread-safe)
    /// Guards descriptor creation vs. the recorder's collector, which
    /// walks descriptors_ mid-run to fold in live per-thread counters.
    mutable std::mutex descriptor_mutex_;
    std::vector<std::unique_ptr<TxDescriptor>> descriptors_;

    /// Present iff config_.recorder.enabled; ticked per attempt by
    /// whichever worker finishes one (try_lock inside keeps them from
    /// contending).
    std::unique_ptr<obs::FlightRecorder> recorder_;
    /// Present iff config_.monitor.enabled; ticked per attempt next to
    /// the recorder. Its series callbacks sum the merged registry plus
    /// the live per-thread descriptor registries (under
    /// descriptor_mutex_, like the recorder's collector).
    std::unique_ptr<obs::HealthMonitor> monitor_;
};

} // namespace rococo::tm
