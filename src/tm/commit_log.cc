#include "tm/commit_log.h"

#include <bit>
#include <thread>

#include "common/check.h"

namespace rococo::tm {

CommitLog::CommitLog(std::shared_ptr<const sig::SignatureConfig> config,
                     size_t capacity)
    : config_(std::move(config)), entries_(capacity)
{
    ROCOCO_CHECK(capacity >= 2 && std::has_single_bit(capacity));
    for (auto& entry : entries_) {
        entry.words = std::vector<std::atomic<uint64_t>>(config_->words());
    }
}

void
CommitLog::publish(uint64_t cid, const sig::BloomSignature& write_sig)
{
    Entry& entry = entries_[cid & (entries_.size() - 1)];
    // Seqlock-style publication: mark busy, write payload, set the tag.
    // Full fences keep it simple — this runs once per commit.
    entry.tag.store(kEmpty, std::memory_order_seq_cst);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const auto& words = write_sig.words();
    for (size_t w = 0; w < words.size(); ++w) {
        entry.words[w].store(words[w], std::memory_order_relaxed);
    }
    std::atomic_thread_fence(std::memory_order_seq_cst);
    entry.tag.store(cid, std::memory_order_seq_cst);
}

void
CommitLog::wait_turn(uint64_t cid) const
{
    while (global_ts_.load(std::memory_order_acquire) != cid) {
        std::this_thread::yield();
    }
}

void
CommitLog::advance(uint64_t cid)
{
    ROCOCO_DCHECK(global_ts_.load(std::memory_order_relaxed) == cid);
    global_ts_.store(cid + 1, std::memory_order_release);
}

bool
CommitLog::collect(uint64_t from, uint64_t to,
                   sig::BloomSignature& out) const
{
    ROCOCO_DCHECK(out.config().words() == config_->words());
    // Union one entry at a time with a seqlock read per entry. The
    // scratch snapshot is thread-local so the validation hot path stays
    // allocation-free after the first call on a thread.
    static thread_local std::vector<uint64_t> scratch;
    scratch.assign(config_->words(), 0);
    for (uint64_t ts = from; ts < to; ++ts) {
        const Entry& entry = entries_[ts & (entries_.size() - 1)];
        if (entry.tag.load(std::memory_order_seq_cst) != ts) return false;
        for (size_t w = 0; w < scratch.size(); ++w) {
            scratch[w] = entry.words[w].load(std::memory_order_relaxed);
        }
        std::atomic_thread_fence(std::memory_order_seq_cst);
        if (entry.tag.load(std::memory_order_seq_cst) != ts) return false;
        // The snapshot is consistent; fold it into the output.
        out.unite_raw(scratch.data(), scratch.size());
    }
    return true;
}

uint64_t
CommitLog::find_conflicting(uint64_t from, uint64_t to, uint64_t addr) const
{
    // Newest-first: with several candidate writers, the latest commit is
    // the one whose update actually broke the snapshot. Entries whose
    // ring slot was reused (tag mismatch) are skipped, which also
    // bounds the scan to one ring revolution of live entries.
    for (uint64_t ts = to; ts > from; --ts) {
        const uint64_t cid = ts - 1;
        const Entry& entry = entries_[cid & (entries_.size() - 1)];
        if (entry.tag.load(std::memory_order_seq_cst) != cid) continue;
        bool hit = true;
        for (unsigned i = 0; i < config_->k() && hit; ++i) {
            const uint64_t bit = config_->bit_index(addr, i);
            const uint64_t word =
                entry.words[bit / 64].load(std::memory_order_relaxed);
            hit = (word >> (bit % 64)) & 1;
        }
        std::atomic_thread_fence(std::memory_order_seq_cst);
        if (entry.tag.load(std::memory_order_seq_cst) != cid) continue;
        if (hit) return cid;
    }
    return core::kNoConflictCid;
}

} // namespace rococo::tm
