#include "tm/redo_log.h"

#include "common/check.h"

namespace rococo::tm {
namespace {

size_t
hash_cell(const TmCell* cell)
{
    auto x = reinterpret_cast<uintptr_t>(cell);
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    return static_cast<size_t>(x);
}

} // namespace

RedoLog::RedoLog()
{
    rehash(64);
}

void
RedoLog::rehash(size_t buckets)
{
    index_.assign(buckets, 0);
    mask_ = buckets - 1;
    for (uint32_t i = 0; i < entries_.size(); ++i) {
        size_t slot = hash_cell(entries_[i].cell) & mask_;
        while (index_[slot] != 0) slot = (slot + 1) & mask_;
        index_[slot] = i + 1;
    }
}

size_t
RedoLog::find_slot(const TmCell* cell) const
{
    size_t slot = hash_cell(cell) & mask_;
    while (index_[slot] != 0 && entries_[index_[slot] - 1].cell != cell) {
        slot = (slot + 1) & mask_;
    }
    return slot;
}

void
RedoLog::put(TmCell* cell, Word value)
{
    const size_t slot = find_slot(cell);
    if (index_[slot] != 0) {
        entries_[index_[slot] - 1].value = value;
        return;
    }
    entries_.push_back({cell, value});
    index_[slot] = static_cast<uint32_t>(entries_.size());
    if (entries_.size() * 2 > index_.size()) rehash(index_.size() * 2);
}

bool
RedoLog::get(const TmCell* cell, Word& value) const
{
    const size_t slot = find_slot(cell);
    if (index_[slot] == 0) return false;
    value = entries_[index_[slot] - 1].value;
    return true;
}

void
RedoLog::apply() const
{
    for (const Entry& entry : entries_) {
        entry.cell->value.store(entry.value, std::memory_order_release);
    }
}

void
RedoLog::clear()
{
    entries_.clear();
    // Keep capacity; just reset the index.
    std::fill(index_.begin(), index_.end(), 0);
}

} // namespace rococo::tm
