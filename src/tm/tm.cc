#include "tm/tm.h"

#include <thread>

#include "common/rng.h"
#include "obs/clock.h"
#include "obs/registry.h"
#include "obs/telemetry.h"
#include "obs/tracer.h"

namespace rococo::tm {

void
TmRuntime::execute(const std::function<void(Tx&)>& body)
{
    for (unsigned attempt = 0;; ++attempt) {
        // One relaxed load when no TelemetrySession is active; the
        // attribution work below is only paid while measuring.
        const bool telemetry = obs::telemetry_active();
        const uint64_t start = telemetry ? obs::now_ns() : 0;
        bool committed;
        {
            obs::ScopedSpan span("tm", "tx.attempt");
            committed = try_execute(body);
        }
        if (committed) {
            if (telemetry) {
                auto& registry = obs::Registry::global();
                registry.bump("tm.commit");
                if (attempt > 0) registry.bump("tm.commit.after_retry");
                registry.histogram("tm.attempt_ns.commit")
                    .record(obs::now_ns() - start);
            }
            return;
        }
        if (telemetry) {
            const obs::AbortReason reason = last_abort_reason();
            auto& registry = obs::Registry::global();
            registry.bump("tm.abort");
            registry.bump(obs::abort_counter_name(reason));
            registry.histogram(obs::retry_histogram_name(reason))
                .record(obs::now_ns() - start);
        }
        TRACE_INSTANT("tm", "tx.abort");
        backoff(attempt);
    }
}

void
TmRuntime::backoff(unsigned attempt)
{
    // Bounded exponential backoff with deterministic per-thread jitter.
    // The machine this reproduction targets can be heavily
    // oversubscribed, so back off by yielding rather than spinning.
    static thread_local Xoshiro256 rng(
        0x5bd1e995 ^ std::hash<std::thread::id>{}(std::this_thread::get_id()));
    const unsigned ceiling = attempt < 10 ? (1u << attempt) : 1024u;
    const uint64_t yields = rng.below(ceiling + 1);
    for (uint64_t i = 0; i < yields; ++i) std::this_thread::yield();
}

} // namespace rococo::tm
