#include "tm/tm.h"

#include <thread>

#include "common/rng.h"

namespace rococo::tm {

void
TmRuntime::execute(const std::function<void(Tx&)>& body)
{
    for (unsigned attempt = 0;; ++attempt) {
        if (try_execute(body)) return;
        backoff(attempt);
    }
}

void
TmRuntime::backoff(unsigned attempt)
{
    // Bounded exponential backoff with deterministic per-thread jitter.
    // The machine this reproduction targets can be heavily
    // oversubscribed, so back off by yielding rather than spinning.
    static thread_local Xoshiro256 rng(
        0x5bd1e995 ^ std::hash<std::thread::id>{}(std::this_thread::get_id()));
    const unsigned ceiling = attempt < 10 ? (1u << attempt) : 1024u;
    const uint64_t yields = rng.below(ceiling + 1);
    for (uint64_t i = 0; i < yields; ++i) std::this_thread::yield();
}

} // namespace rococo::tm
