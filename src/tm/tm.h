/// @file
/// The word-based transactional-memory API every runtime in this repo
/// implements (ROCoCoTM, the TinySTM-like LSA baseline, the simulated
/// TSX HTM and the global-lock TM), and that the STAMP-like workloads
/// are written against.
///
/// Shared state lives in TmCell words (64-bit); transactions access
/// them through a Tx handle inside TmRuntime::execute, which re-runs
/// the body until it commits:
///
///     TmArray<int64_t> accounts(runtime_cells, 2);
///     runtime.execute([&](tm::Tx& tx) {
///         int64_t a = accounts.get(tx, 0);
///         accounts.set(tx, 0, a - 1);
///         accounts.set(tx, 1, accounts.get(tx, 1) + 1);
///     });
///
/// Aborts are signalled by throwing TxAbortException through the body,
/// so bodies must be exception-safe and must not perform irrevocable
/// side effects (the usual STM contract).
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "common/stats.h"
#include "obs/abort_reason.h"

namespace rococo::tm {

/// The transactional word.
using Word = uint64_t;

/// A shared memory cell. Cells are the unit of conflict detection;
/// their pointer identity is the "address" fed to signatures and the
/// validation engine.
struct TmCell
{
    std::atomic<Word> value{0};

    /// Non-transactional access, for single-threaded setup/teardown and
    /// result verification only.
    Word unsafe_load() const { return value.load(std::memory_order_relaxed); }
    void
    unsafe_store(Word v)
    {
        value.store(v, std::memory_order_relaxed);
    }
};

/// Thrown by runtimes to roll back the current attempt. User code must
/// let it propagate.
class TxAbortException
{
};

/// Handle to the transaction in flight; passed to the body by
/// TmRuntime::execute.
class Tx
{
  public:
    virtual ~Tx() = default;

    /// Transactional read of @p cell.
    virtual Word load(const TmCell& cell) = 0;

    /// Transactional write of @p cell.
    virtual void store(TmCell& cell, Word value) = 0;

    /// Request an abort-and-retry (e.g. condition not yet met).
    [[noreturn]] virtual void retry() = 0;
};

/// Typed view over a TmCell for any trivially copyable T of at most
/// 8 bytes.
template <typename T>
class TmVar
{
    static_assert(sizeof(T) <= sizeof(Word));
    static_assert(std::is_trivially_copyable_v<T>);

  public:
    TmVar() = default;
    explicit TmVar(T initial) { set_unsafe(initial); }

    T
    get(Tx& tx) const
    {
        return decode(tx.load(cell_));
    }

    void
    set(Tx& tx, T v)
    {
        tx.store(cell_, encode(v));
    }

    T get_unsafe() const { return decode(cell_.unsafe_load()); }
    void set_unsafe(T v) { cell_.unsafe_store(encode(v)); }

    TmCell& cell() { return cell_; }
    const TmCell& cell() const { return cell_; }

  private:
    static Word
    encode(T v)
    {
        Word w = 0;
        std::memcpy(&w, &v, sizeof(T));
        return w;
    }
    static T
    decode(Word w)
    {
        T v;
        std::memcpy(&v, &w, sizeof(T));
        return v;
    }

    mutable TmCell cell_;
};

/// Fixed-size array of typed transactional variables.
template <typename T>
class TmArray
{
  public:
    explicit TmArray(size_t n)
        : vars_(n)
    {
    }

    size_t size() const { return vars_.size(); }

    T get(Tx& tx, size_t i) const { return vars_[i].get(tx); }
    void set(Tx& tx, size_t i, T v) { vars_[i].set(tx, v); }
    T get_unsafe(size_t i) const { return vars_[i].get_unsafe(); }
    void set_unsafe(size_t i, T v) { vars_[i].set_unsafe(v); }

    TmVar<T>& var(size_t i) { return vars_[i]; }

  private:
    std::vector<TmVar<T>> vars_;
};

/// Per-execution outcome statistics names shared by all runtimes.
namespace stat {
inline constexpr const char* kCommits = "commits";
inline constexpr const char* kAborts = "aborts";
inline constexpr const char* kReadOnlyCommits = "read_only_commits";
inline constexpr const char* kEagerAborts = "eager_aborts";
inline constexpr const char* kValidationAborts = "validation_aborts";
inline constexpr const char* kCycleAborts = "cycle_aborts";
inline constexpr const char* kOverflowAborts = "overflow_aborts";
inline constexpr const char* kCapacityAborts = "capacity_aborts";
inline constexpr const char* kConflictAborts = "conflict_aborts";
inline constexpr const char* kFallbackCommits = "fallback_commits";
inline constexpr const char* kStaleAborts = "stale_aborts";
inline constexpr const char* kTimeoutAborts = "timeout_aborts";
inline constexpr const char* kRejectedAborts = "rejected_aborts";
/// Aborts whose conflicting commit was identified (provenance).
inline constexpr const char* kConflictAttributed = "conflict_attributed";
} // namespace stat

/// Abstract TM runtime. Thread lifecycle: each worker thread calls
/// thread_init(tid) once before its first execute() and thread_fini()
/// before joining.
class TmRuntime
{
  public:
    virtual ~TmRuntime() = default;

    virtual std::string name() const = 0;

    virtual void thread_init(unsigned thread_id) = 0;
    virtual void thread_fini() = 0;

    /// Run @p body transactionally, retrying with bounded exponential
    /// backoff until it commits.
    void execute(const std::function<void(Tx&)>& body);

    /// Aggregated statistics of all finished threads (call after
    /// joining workers).
    virtual CounterBag stats() const = 0;

    /// Typed cause of the calling thread's most recent failed attempt
    /// (meaningful between a failed try_execute and the next attempt).
    /// Runtimes that do not attribute aborts report kUnknown.
    virtual obs::AbortReason last_abort_reason() const
    {
        return obs::AbortReason::kUnknown;
    }

  protected:
    /// One attempt; returns true if committed. Implementations catch
    /// TxAbortException internally and roll back.
    virtual bool try_execute(const std::function<void(Tx&)>& body) = 0;

    /// Yield-based backoff helper for the attempt loop.
    static void backoff(unsigned attempt);
};

} // namespace rococo::tm
