#include "tm/update_set.h"

#include "common/check.h"

namespace rococo::tm {

UpdateSet::UpdateSet(std::shared_ptr<const sig::SignatureConfig> config,
                     unsigned slots)
    : config_(std::move(config)), slots_(slots)
{
    ROCOCO_CHECK(slots > 0);
    for (auto& slot : slots_) {
        slot.words = std::vector<std::atomic<uint64_t>>(config_->words());
    }
}

void
UpdateSet::publish(unsigned slot_index, const sig::BloomSignature& write_sig)
{
    Slot& slot = slots_[slot_index];
    ROCOCO_DCHECK(slot.active.load(std::memory_order_relaxed) == 0);
    const auto& words = write_sig.words();
    for (size_t w = 0; w < words.size(); ++w) {
        slot.words[w].store(words[w], std::memory_order_relaxed);
    }
    // Words must be visible before the slot reads as active.
    slot.active.store(1, std::memory_order_release);
}

void
UpdateSet::clear(unsigned slot_index)
{
    slots_[slot_index].active.store(0, std::memory_order_release);
}

bool
UpdateSet::query(uint64_t addr) const
{
    // Precompute the k bit positions once; each active slot then costs
    // k relaxed loads.
    const unsigned k = config_->k();
    uint64_t bit_index[16];
    ROCOCO_DCHECK(k <= 16);
    for (unsigned i = 0; i < k; ++i) {
        bit_index[i] = config_->bit_index(addr, i);
    }
    for (const Slot& slot : slots_) {
        if (slot.active.load(std::memory_order_acquire) == 0) continue;
        bool hit = true;
        for (unsigned i = 0; i < k && hit; ++i) {
            const uint64_t bit = bit_index[i];
            const uint64_t word =
                slot.words[bit >> 6].load(std::memory_order_relaxed);
            hit = (word >> (bit & 63)) & 1;
        }
        if (hit) return true;
    }
    return false;
}

} // namespace rococo::tm
