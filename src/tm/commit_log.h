/// @file
/// The global commit log of ROCoCoTM's CPU side (Fig. 8): a monotonic
/// GlobalTS plus a ring of write-set signatures indexed by timestamp
/// (the CommitQueue of Algorithm 1). Executing transactions scan the
/// entries between their LocalTS and the current GlobalTS to extend
/// their snapshot; committers publish their write signature and bump
/// GlobalTS in cid order, which keeps the CPU-side timestamp space
/// identical to the FPGA's commit-id space.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/sliding_window.h"
#include "sig/bloom_signature.h"

namespace rococo::tm {

class CommitLog
{
  public:
    /// @param config signature geometry
    /// @param capacity ring capacity (power of two). A reader lagging
    ///     more than @p capacity commits behind finds its entries
    ///     overwritten and must abort (kStale).
    CommitLog(std::shared_ptr<const sig::SignatureConfig> config,
              size_t capacity = 1 << 14);

    /// Current GlobalTS: number of fully committed write transactions.
    uint64_t
    global_ts() const
    {
        return global_ts_.load(std::memory_order_acquire);
    }

    /// Store the write signature of commit @p cid into the ring.
    /// Call before advance(cid).
    void publish(uint64_t cid, const sig::BloomSignature& write_sig);

    /// Block (yielding) until GlobalTS == @p cid, i.e. all earlier
    /// commits have fully written back.
    void wait_turn(uint64_t cid) const;

    /// GlobalTS := cid + 1 (release). Call after write-back completes.
    void advance(uint64_t cid);

    /// Union the signatures of commits [from, to) into @p out.
    /// Returns false if any entry was already overwritten (reader too
    /// stale) — the caller must abort.
    bool collect(uint64_t from, uint64_t to,
                 sig::BloomSignature& out) const;

    /// Abort provenance: the newest commit in [from, to) whose write
    /// signature may contain @p addr, or core::kNoConflictCid when none
    /// does (or the candidates were already overwritten). Best-effort —
    /// bloom positives can misattribute within the range, and the scan
    /// runs only on the abort path, never on loads that succeed.
    uint64_t find_conflicting(uint64_t from, uint64_t to,
                              uint64_t addr) const;

    size_t capacity() const { return entries_.size(); }

  private:
    struct Entry
    {
        /// cid stored in this ring slot; kEmpty until first use.
        std::atomic<uint64_t> tag{kEmpty};
        std::vector<std::atomic<uint64_t>> words;
    };
    static constexpr uint64_t kEmpty = ~uint64_t{0};

    std::shared_ptr<const sig::SignatureConfig> config_;
    std::vector<Entry> entries_;
    std::atomic<uint64_t> global_ts_{0};
};

} // namespace rococo::tm
