/// @file
/// Exact (address-set based) ROCoCo validation.
///
/// This is the reference spelling of the full ROCoCo validation phase:
/// it keeps the precise read/write sets of the committed window,
/// classifies the incoming transaction's dependencies into forward and
/// backward edges, and feeds them to the sliding-window reachability
/// check. The FPGA engine (src/fpga) performs the same classification
/// with bloom-filter signatures — conservatively (false positives add
/// spurious edges) — and is property-tested against this oracle.
///
/// Edge classification for an incoming transaction t with read set R,
/// write set W and snapshot cid s (t observed exactly the commits with
/// cid < s), against a committed window transaction c:
///
///   forward  (t ->rw c):  cid_c >= s  and  W_c ∩ R != ∅
///       t read a version older than c's write (write-after-read from
///       t to c); ROCoCo may still serialize t before c.
///   backward (c ->rw t):  W_c ∩ W != ∅   (WAW: writes apply in commit
///       order), or R_c ∩ W != ∅ (WAR: c read the pre-t version), or
///       cid_c < s and W_c ∩ R != ∅ (RAW: t read c's update).
///
/// A snapshot older than the window start cannot be checked against
/// evicted writes and aborts with kWindowOverflow ("transactions that
/// neglect updates of t_{k-W} abort", §4.2).
#pragma once

#include <cstdint>
#include <deque>
#include <span>
#include <vector>

#include "core/sliding_window.h"

namespace rococo::core {

/// Exact validator: sliding-window ROCoCo over precise address sets.
class ExactRococoValidator
{
  public:
    /// @param window sliding-window size W
    /// @param strict_read_only when true, read-only transactions go
    ///     through full cycle validation (they can still close cycles
    ///     via RAW + anti-dependency edges when writers commit "into
    ///     the past"); when false they commit directly, reproducing the
    ///     paper's fast path (§5.3).
    explicit ExactRococoValidator(size_t window,
                                  bool strict_read_only = true);

    /// Validate a transaction. @p snapshot_cid is the number of commits
    /// the transaction observed (it saw exactly cids < snapshot_cid).
    /// On kCommit of a writer, the transaction enters the window.
    ValidationResult validate(std::span<const uint64_t> reads,
                              std::span<const uint64_t> writes,
                              uint64_t snapshot_cid);

    uint64_t next_cid() const { return validator_.next_cid(); }
    uint64_t window_start() const { return validator_.window_start(); }
    const SlidingWindowValidator& window_validator() const
    {
        return validator_;
    }

    /// Build the forward/backward request without validating (exposed
    /// so the FPGA detector tests can compare classifications).
    ValidationRequest classify(std::span<const uint64_t> reads,
                               std::span<const uint64_t> writes,
                               uint64_t snapshot_cid) const;

  private:
    struct Committed
    {
        uint64_t cid;
        std::vector<uint64_t> reads;
        std::vector<uint64_t> writes;
    };

    static bool overlaps(std::span<const uint64_t> sorted_a,
                         std::span<const uint64_t> sorted_b);

    SlidingWindowValidator validator_;
    std::deque<Committed> history_; ///< window entries, oldest first
    bool strict_read_only_;
};

} // namespace rococo::core
