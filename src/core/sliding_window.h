/// @file
/// Sliding-window ROCoCo validator (§4.2).
///
/// Hardware resources are bounded, so the FPGA keeps closure state for
/// only the last W committed transactions. Commits are numbered by a
/// monotonically increasing commit id (cid); cid c lives in slot c % W,
/// and committing cid c evicts cid c - W. A validating transaction that
/// depends on an evicted commit — i.e. one that "neglects updates of
/// t_{k-W}" — aborts with kWindowOverflow.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bitvector.h"
#include "core/reachability_matrix.h"
#include "obs/abort_reason.h"

namespace rococo::core {

/// Why a transaction was admitted or rejected by the validator (or, for
/// the last two, by the serving layer in front of it — the validator
/// itself only ever returns the first three).
enum class Verdict : uint8_t
{
    kCommit,         ///< no cycle; transaction committed and got a cid
    kAbortCycle,     ///< would close a ->rw cycle
    kWindowOverflow, ///< depends on a commit already evicted from the window
    kTimeout,        ///< deadline elapsed before the engine decided
    kRejected,       ///< server shed load (queue full); retry later
};

const char* to_string(Verdict verdict);

/// Number of Verdict values — sized for per-verdict counter arrays on
/// hot paths that must not build counter-name strings per request.
inline constexpr size_t kVerdictCount =
    static_cast<size_t>(Verdict::kRejected) + 1;

/// Typed abort cause for a rejecting verdict (obs::AbortReason::kNone
/// for kCommit), so telemetry attributes validator aborts without
/// re-deriving the mapping at every call site.
obs::AbortReason abort_reason(Verdict verdict);

/// A validation request expressed in commit ids: the incoming
/// transaction's direct R/W dependencies to already-committed
/// transactions.
struct ValidationRequest
{
    /// Commits the transaction must precede (t ->rw t_c): it read a
    /// version older than c's write.
    std::vector<uint64_t> forward;
    /// Commits that must precede the transaction (t_c ->rw t): RAW, WAR
    /// and WAW dependencies on c.
    std::vector<uint64_t> backward;
};

/// Sentinel for ValidationResult::conflict_cid: no conflicting commit
/// was identified for this result.
inline constexpr uint64_t kNoConflictCid = ~uint64_t{0};

/// Outcome of a validation.
struct ValidationResult
{
    Verdict verdict = Verdict::kAbortCycle;
    /// The commit id assigned on kCommit (undefined otherwise).
    uint64_t cid = 0;
    /// Typed abort cause (kNone on kCommit); always consistent with
    /// verdict — set wherever a result is constructed.
    obs::AbortReason reason = obs::AbortReason::kNone;
    /// Abort provenance: on kAbortCycle, the commit id of the committed
    /// transaction this one collided with (a witness of the cycle —
    /// cycles through several commits name the first found). Backends
    /// that cannot attribute the abort (timeouts, rejections, window
    /// overflows, v1 wire peers) leave kNoConflictCid.
    uint64_t conflict_cid = kNoConflictCid;
};

/// cid-addressed wrapper around ReachabilityMatrix implementing the
/// sliding-window policy. Single-threaded: concurrency is provided by
/// the pipeline around it (fpga/validation_pipeline.h), matching the
/// centralized Manager of the paper.
class SlidingWindowValidator
{
  public:
    explicit SlidingWindowValidator(size_t window);

    size_t window() const { return matrix_.window(); }

    /// cid that would be assigned to the next commit. cids start at 0.
    uint64_t next_cid() const { return next_cid_; }

    /// Oldest cid still present in the window (== next_cid() when the
    /// window is empty).
    uint64_t window_start() const;

    /// Number of commits currently tracked.
    size_t occupancy() const;

    /// Validate the request; on kCommit the transaction is atomically
    /// added to the window (evicting the oldest entry if full).
    ValidationResult validate_and_commit(const ValidationRequest& request);

    /// Validate without committing (used for what-if analysis and
    /// read-only transactions that still want a serializability check).
    Verdict validate_only(const ValidationRequest& request) const;

    /// Does committed cid @p a reach committed cid @p b? Both must be in
    /// the window. Exposed for tests and diagnostics.
    bool reaches(uint64_t a, uint64_t b) const;

    const ReachabilityMatrix& matrix() const { return matrix_; }

  private:
    /// Commit id of the current occupant of @p slot, or kNoConflictCid
    /// when @p slot is kNoConflictSlot or holds no live commit.
    uint64_t conflict_cid_at(size_t slot) const;

    /// Translate a cid-based request into slot vectors; returns false if
    /// any cid is already evicted.
    bool build_vectors(const ValidationRequest& request, BitVector& f,
                       BitVector& b) const;

    ReachabilityMatrix matrix_;
    uint64_t next_cid_ = 0;
    /// Per-call scratch (edge vectors + probe result), window-sized at
    /// construction so steady-state validation allocates nothing.
    /// Mutable because validate_only() is logically const; the class is
    /// single-threaded by contract (see the class comment), so the
    /// scratch needs no further synchronization.
    mutable BitVector f_scratch_;
    mutable BitVector b_scratch_;
    mutable ProbeResult probe_scratch_;
};

} // namespace rococo::core
