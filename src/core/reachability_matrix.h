/// @file
/// The reachability matrix at the heart of the ROCoCo algorithm (§4.1).
///
/// The matrix R over W transaction slots stores the transitive closure
/// of the committed-transaction DAG: r[i][j] = 1 iff t_i can reach
/// (precedes) t_j. Validating an incoming transaction t with direct
/// forward edges f (t -> t_i) and backward edges b (t_i -> t) amounts
/// to two matrix-vector products on boolean algebra:
///
///     p = f  OR  R^T f   (everything t reaches)
///     s = b  OR  R  b    (everything that reaches t)
///
/// and t closes a cycle iff p AND s != 0. On the FPGA these are W-wide
/// wired-OR reductions finishing in one cycle; in software we keep both
/// R and its transpose up to date so neither product needs the matrix
/// transposition the paper calls out as the CPU bottleneck (§4.2).
///
/// Slots are a fixed pool; the sliding-window policy (which slot holds
/// which commit) lives in core/sliding_window.h.
#pragma once

#include <cstddef>

#include "common/bitvector.h"

namespace rococo::core {

/// Sentinel for ProbeResult::conflict_slot: no conflicting slot
/// identified (the probe found no cycle).
inline constexpr size_t kNoConflictSlot = ~size_t{0};

/// Result of probing the matrix with an incoming transaction's direct
/// dependency vectors.
struct ProbeResult
{
    bool cyclic = false;
    BitVector proceeding; ///< p: slots the transaction precedes
    BitVector succeeding; ///< s: slots that precede the transaction
    /// When cyclic: one slot witnessing the cycle — the first slot that
    /// the transaction both precedes and succeeds (p AND s), or, for
    /// eviction cycles, the first slot in p that reaches an evicted
    /// transaction. kNoConflictSlot otherwise. Filled only on the abort
    /// path, so the extra scan costs nothing on commits.
    size_t conflict_slot = kNoConflictSlot;
};

/// Transitive-closure matrix over a fixed number of slots, maintained
/// incrementally as transactions commit and are evicted.
class ReachabilityMatrix
{
  public:
    explicit ReachabilityMatrix(size_t window);

    size_t window() const { return reach_.size(); }

    /// Occupied slots (those currently holding a committed transaction).
    const BitVector& occupied() const { return occupied_; }

    /// Does t_i reach t_j? Both slots must be occupied. Reflexive:
    /// reaches(i, i) is true for occupied i.
    bool reaches(size_t i, size_t j) const;

    /// Compute p/s for a transaction with direct forward edges @p f and
    /// backward edges @p b (bit per slot; bits may only be set for
    /// occupied slots) and detect cycles. Does not modify the matrix.
    ProbeResult probe(const BitVector& f, const BitVector& b) const;

    /// probe() into caller-owned storage: @p out's vectors are
    /// overwritten in place (no allocation once they are window-sized),
    /// the scratch-reuse form the validation hot path uses.
    void probe_into(const BitVector& f, const BitVector& b,
                    ProbeResult* out) const;

    /// Commit the probed transaction into @p slot (must be free):
    /// updates all closure entries (r[i][j] |= s[i] & p[j]) and installs
    /// p/s as the new slot's row/column.
    void insert(size_t slot, const ProbeResult& probe);

    /// Evict the transaction in @p slot. Remaining slots that could
    /// reach the evicted transaction are accumulated into
    /// reaches_evicted(): a future transaction that reaches any of them
    /// would transitively precede an evicted (hence
    /// serialized-before-everything-future) transaction, closing an
    /// invisible cycle, and must abort. This sticky vector is the
    /// soundness companion of the paper's "transactions that neglect
    /// updates of t_{k-W} abort" rule.
    void clear_slot(size_t slot);

    /// Slots whose transaction precedes some already-evicted
    /// transaction (see clear_slot()).
    const BitVector& reaches_evicted() const { return reaches_evicted_; }

    /// Explicitly flag @p slot as preceding an evicted transaction.
    /// Needed when a commit both evicts its slot's previous occupant and
    /// preceded that occupant (the probe ran while the occupant was
    /// still in the window, so insert() cannot see the edge).
    void mark_reaches_evicted(size_t slot);

    /// Row i of the closure: all slots t_i reaches.
    const BitVector& row(size_t i) const { return reach_[i]; }

    /// Column j of the closure (maintained as the transpose row): all
    /// slots reaching t_j.
    const BitVector& column(size_t j) const { return reached_[j]; }

    /// Expensive internal consistency check (transpose coherence,
    /// transitivity); used by tests and ROCOCO_DCHECK-heavy paths.
    bool check_invariants() const;

    /// Multi-line human-readable dump of the matrix state (occupied
    /// slots, closure rows, reaches-evicted flags) for debugging and
    /// teaching material.
    std::string debug_dump() const;

  private:
    std::vector<BitVector> reach_;   ///< reach_[i] = {j : t_i |> t_j}
    std::vector<BitVector> reached_; ///< reached_[j] = {i : t_i |> t_j}
    BitVector occupied_;
    BitVector reaches_evicted_;
    /// clear_slot() scratch, window-sized at construction: a full
    /// window evicts on every commit, so the eviction path must not
    /// allocate (tests/hotpath_alloc_test.cc).
    BitVector evict_scratch_;
};

} // namespace rococo::core
