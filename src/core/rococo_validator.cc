#include "core/rococo_validator.h"

#include <algorithm>

#include "common/check.h"

namespace rococo::core {

ExactRococoValidator::ExactRococoValidator(size_t window,
                                           bool strict_read_only)
    : validator_(window), strict_read_only_(strict_read_only)
{
}

bool
ExactRococoValidator::overlaps(std::span<const uint64_t> sorted_a,
                               std::span<const uint64_t> sorted_b)
{
    size_t i = 0, j = 0;
    while (i < sorted_a.size() && j < sorted_b.size()) {
        if (sorted_a[i] < sorted_b[j]) {
            ++i;
        } else if (sorted_a[i] > sorted_b[j]) {
            ++j;
        } else {
            return true;
        }
    }
    return false;
}

ValidationRequest
ExactRococoValidator::classify(std::span<const uint64_t> reads,
                               std::span<const uint64_t> writes,
                               uint64_t snapshot_cid) const
{
    ROCOCO_DCHECK(std::is_sorted(reads.begin(), reads.end()));
    ROCOCO_DCHECK(std::is_sorted(writes.begin(), writes.end()));

    ValidationRequest request;
    for (const Committed& c : history_) {
        const bool waw = overlaps(c.writes, writes);
        const bool war = overlaps(c.reads, writes);
        const bool read_overlap = overlaps(c.writes, reads);
        if (c.cid >= snapshot_cid && read_overlap) {
            // t read the pre-c version: t must be serialized before c.
            request.forward.push_back(c.cid);
        }
        if (waw || war || (c.cid < snapshot_cid && read_overlap)) {
            // c's effects precede t's commit.
            request.backward.push_back(c.cid);
        }
    }
    return request;
}

ValidationResult
ExactRococoValidator::validate(std::span<const uint64_t> reads,
                               std::span<const uint64_t> writes,
                               uint64_t snapshot_cid)
{
    std::vector<uint64_t> r(reads.begin(), reads.end());
    std::vector<uint64_t> w(writes.begin(), writes.end());
    std::sort(r.begin(), r.end());
    r.erase(std::unique(r.begin(), r.end()), r.end());
    std::sort(w.begin(), w.end());
    w.erase(std::unique(w.begin(), w.end()), w.end());

    if (w.empty() && !strict_read_only_) {
        // Paper fast path: read-only transactions commit directly on the
        // CPU (their snapshot was kept consistent by eager detection).
        return {Verdict::kCommit, 0, obs::AbortReason::kNone};
    }

    if (snapshot_cid < validator_.window_start() && !r.empty()) {
        // The transaction may have neglected updates of an evicted
        // commit; its reads cannot be checked any more.
        return {Verdict::kWindowOverflow, 0,
                obs::AbortReason::kWindowEviction};
    }

    const ValidationRequest request = classify(r, w, snapshot_cid);
    const ValidationResult result = validator_.validate_and_commit(request);
    if (result.verdict == Verdict::kCommit) {
        history_.push_back({result.cid, std::move(r), std::move(w)});
        if (history_.size() > validator_.window()) history_.pop_front();
        ROCOCO_DCHECK(history_.size() == validator_.occupancy());
    }
    return result;
}

} // namespace rococo::core
