#include "core/reachability_matrix.h"

#include <string>

#include "common/check.h"

namespace rococo::core {

ReachabilityMatrix::ReachabilityMatrix(size_t window)
    : occupied_(window), reaches_evicted_(window), evict_scratch_(window)
{
    ROCOCO_CHECK(window > 0);
    reach_.reserve(window);
    reached_.reserve(window);
    for (size_t i = 0; i < window; ++i) {
        reach_.emplace_back(window);
        reached_.emplace_back(window);
    }
}

bool
ReachabilityMatrix::reaches(size_t i, size_t j) const
{
    ROCOCO_DCHECK(occupied_.test(i) && occupied_.test(j));
    return reach_[i].test(j);
}

ProbeResult
ReachabilityMatrix::probe(const BitVector& f, const BitVector& b) const
{
    ProbeResult result;
    probe_into(f, b, &result);
    return result;
}

void
ReachabilityMatrix::probe_into(const BitVector& f, const BitVector& b,
                               ProbeResult* out) const
{
    ROCOCO_DCHECK(f.size() == window() && b.size() == window());

    ProbeResult& result = *out;
    result.proceeding = f;
    result.succeeding = b;

    // p = f | R^T f : union the reach-rows of every direct successor.
    for (size_t j = f.find_first(); j < window(); j = f.find_next(j)) {
        ROCOCO_DCHECK(occupied_.test(j));
        result.proceeding |= reach_[j];
    }
    // s = b | R b : union the reached-from rows of every direct
    // predecessor.
    for (size_t j = b.find_first(); j < window(); j = b.find_next(j)) {
        ROCOCO_DCHECK(occupied_.test(j));
        result.succeeding |= reached_[j];
    }

    // A cycle exists iff some committed transaction both precedes and is
    // preceded by the incoming one. Reaching a slot that precedes an
    // already-evicted transaction is also a cycle: evicted transactions
    // are serialized before everything that validates from now on.
    result.cyclic = result.proceeding.intersects(result.succeeding) ||
                    result.proceeding.intersects(reaches_evicted_);
    result.conflict_slot = kNoConflictSlot;
    if (result.cyclic) {
        // Name a witness of the cycle for abort provenance. Only the
        // abort path pays for this scan; commits take the branch above
        // and return.
        for (size_t j = result.proceeding.find_first(); j < window();
             j = result.proceeding.find_next(j)) {
            if (result.succeeding.test(j) || reaches_evicted_.test(j)) {
                result.conflict_slot = j;
                break;
            }
        }
    }
}

void
ReachabilityMatrix::insert(size_t slot, const ProbeResult& probe)
{
    ROCOCO_CHECK(!occupied_.test(slot));
    ROCOCO_CHECK(!probe.cyclic);
    const BitVector& p = probe.proceeding;
    const BitVector& s = probe.succeeding;

    // Transitivity through the new vertex: r[i][j] |= s[i] & p[j].
    for (size_t i = s.find_first(); i < window(); i = s.find_next(i)) {
        reach_[i] |= p;
        reach_[i].set(slot);
    }
    for (size_t j = p.find_first(); j < window(); j = p.find_next(j)) {
        reached_[j] |= s;
        reached_[j].set(slot);
    }

    // Install the new vertex's row and column (reflexive).
    reach_[slot] = p;
    reach_[slot].set(slot);
    reached_[slot] = s;
    reached_[slot].set(slot);
    occupied_.set(slot);

    // Evictions that happened between this transaction's probe and its
    // insert (its own commit evicting the oldest window entry) may have
    // grown reaches_evicted_; if the new transaction reaches any such
    // slot it transitively precedes an evicted transaction too.
    if (p.intersects(reaches_evicted_)) reaches_evicted_.set(slot);
}

void
ReachabilityMatrix::mark_reaches_evicted(size_t slot)
{
    ROCOCO_CHECK(occupied_.test(slot));
    reaches_evicted_.set(slot);
}

void
ReachabilityMatrix::clear_slot(size_t slot)
{
    ROCOCO_CHECK(occupied_.test(slot));

    // Remember who still precedes the transaction being evicted.
    BitVector& precedes_evicted = evict_scratch_;
    precedes_evicted = reached_[slot]; // same size: reuses capacity
    precedes_evicted.reset(slot);
    precedes_evicted &= occupied_;
    reaches_evicted_ |= precedes_evicted;

    // Zero the row and column.
    for (size_t i = 0; i < window(); ++i) {
        reach_[i].reset(slot);
        reached_[i].reset(slot);
    }
    reach_[slot].clear();
    reached_[slot].clear();
    occupied_.reset(slot);
    reaches_evicted_.reset(slot);
}

std::string
ReachabilityMatrix::debug_dump() const
{
    std::string out = "reachability matrix (W=" +
                      std::to_string(window()) + ")\n";
    out += "occupied:        " + occupied_.to_string() + "\n";
    out += "reaches_evicted: " + reaches_evicted_.to_string() + "\n";
    for (size_t i = 0; i < window(); ++i) {
        if (!occupied_.test(i)) continue;
        out += "  slot " + std::to_string(i) + " reaches " +
               reach_[i].to_string() + "\n";
    }
    return out;
}

bool
ReachabilityMatrix::check_invariants() const
{
    const size_t n = window();
    for (size_t i = 0; i < n; ++i) {
        if (!occupied_.test(i)) {
            if (reach_[i].any() || reached_[i].any()) return false;
            continue;
        }
        if (!reach_[i].test(i) || !reached_[i].test(i)) return false;
        for (size_t j = 0; j < n; ++j) {
            // Transpose coherence.
            if (reach_[i].test(j) != reached_[j].test(i)) return false;
            // Entries only between occupied slots.
            if (reach_[i].test(j) && !occupied_.test(j)) return false;
        }
    }
    // Transitivity: i |> j and j |> k implies i |> k.
    for (size_t i = 0; i < n; ++i) {
        for (size_t j = reach_[i].find_first(); j < n;
             j = reach_[i].find_next(j)) {
            for (size_t k = reach_[j].find_first(); k < n;
                 k = reach_[j].find_next(k)) {
                if (!reach_[i].test(k)) return false;
            }
        }
    }
    return true;
}

} // namespace rococo::core
