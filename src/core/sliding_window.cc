#include "core/sliding_window.h"

#include "common/check.h"

namespace rococo::core {

const char*
to_string(Verdict verdict)
{
    switch (verdict) {
      case Verdict::kCommit: return "commit";
      case Verdict::kAbortCycle: return "abort-cycle";
      case Verdict::kWindowOverflow: return "window-overflow";
      case Verdict::kTimeout: return "timeout";
      case Verdict::kRejected: return "rejected";
    }
    return "?";
}

obs::AbortReason
abort_reason(Verdict verdict)
{
    switch (verdict) {
      case Verdict::kCommit: return obs::AbortReason::kNone;
      case Verdict::kAbortCycle: return obs::AbortReason::kValidationCycle;
      case Verdict::kWindowOverflow: return obs::AbortReason::kWindowEviction;
      case Verdict::kTimeout: return obs::AbortReason::kTimeout;
      case Verdict::kRejected: return obs::AbortReason::kBackpressure;
    }
    return obs::AbortReason::kUnknown;
}

SlidingWindowValidator::SlidingWindowValidator(size_t window)
    : matrix_(window), f_scratch_(window), b_scratch_(window)
{
    probe_scratch_.proceeding = BitVector(window);
    probe_scratch_.succeeding = BitVector(window);
}

uint64_t
SlidingWindowValidator::window_start() const
{
    const uint64_t held = matrix_.occupied().count();
    return next_cid_ - held;
}

size_t
SlidingWindowValidator::occupancy() const
{
    return matrix_.occupied().count();
}

uint64_t
SlidingWindowValidator::conflict_cid_at(size_t slot) const
{
    if (slot == kNoConflictSlot) return kNoConflictCid;
    // The occupant of slot s is the unique cid c in
    // [window_start, next_cid) with c % W == s.
    const uint64_t start = window_start();
    const uint64_t w = window();
    const uint64_t cid = start + ((slot + w - start % w) % w);
    return cid < next_cid_ ? cid : kNoConflictCid;
}

bool
SlidingWindowValidator::build_vectors(const ValidationRequest& request,
                                      BitVector& f, BitVector& b) const
{
    const uint64_t start = window_start();
    for (uint64_t cid : request.forward) {
        ROCOCO_CHECK(cid < next_cid_);
        if (cid < start) return false;
        f.set(cid % window());
    }
    for (uint64_t cid : request.backward) {
        ROCOCO_CHECK(cid < next_cid_);
        if (cid < start) return false;
        b.set(cid % window());
    }
    return true;
}

ValidationResult
SlidingWindowValidator::validate_and_commit(const ValidationRequest& request)
{
    BitVector& f = f_scratch_;
    BitVector& b = b_scratch_;
    f.clear();
    b.clear();
    if (!build_vectors(request, f, b)) {
        return {Verdict::kWindowOverflow, 0,
                obs::AbortReason::kWindowEviction};
    }

    ProbeResult& probe = probe_scratch_;
    matrix_.probe_into(f, b, &probe);
    if (probe.cyclic) {
        return {Verdict::kAbortCycle, 0, obs::AbortReason::kValidationCycle,
                conflict_cid_at(probe.conflict_slot)};
    }

    const uint64_t cid = next_cid_++;
    const size_t slot = cid % window();
    bool preceded_evictee = false;
    if (matrix_.occupied().test(slot)) {
        // Slot holds cid - W: the window is full, evict the oldest.
        // The probe legitimately ran against the full window (the
        // hardware detector compares against h_63 before the shift), so
        // p/s may reference the evictee's slot; drop those bits before
        // reusing the slot for the new commit, and remember a
        // t |> evictee edge so future transactions reaching t abort.
        preceded_evictee = probe.proceeding.test(slot);
        matrix_.clear_slot(slot);
        probe.proceeding.reset(slot);
        probe.succeeding.reset(slot);
    }
    matrix_.insert(slot, probe);
    if (preceded_evictee) matrix_.mark_reaches_evicted(slot);
    return {Verdict::kCommit, cid, obs::AbortReason::kNone};
}

Verdict
SlidingWindowValidator::validate_only(const ValidationRequest& request) const
{
    BitVector& f = f_scratch_;
    BitVector& b = b_scratch_;
    f.clear();
    b.clear();
    if (!build_vectors(request, f, b)) {
        return Verdict::kWindowOverflow;
    }
    matrix_.probe_into(f, b, &probe_scratch_);
    return probe_scratch_.cyclic ? Verdict::kAbortCycle : Verdict::kCommit;
}

bool
SlidingWindowValidator::reaches(uint64_t a, uint64_t b) const
{
    ROCOCO_CHECK(a >= window_start() && a < next_cid_);
    ROCOCO_CHECK(b >= window_start() && b < next_cid_);
    return matrix_.reaches(a % window(), b % window());
}

} // namespace rococo::core
