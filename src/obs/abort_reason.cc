#include "obs/abort_reason.h"

namespace rococo::obs {
namespace {

struct ReasonNames
{
    const char* id;
    const char* counter;
    const char* histogram;
};

// Indexed by AbortReason; keep in enum order.
constexpr ReasonNames kNames[kAbortReasonCount] = {
    {"none", "tm.abort.none", "tm.retry_ns.none"},
    {"explicit-retry", "tm.abort.explicit-retry",
     "tm.retry_ns.explicit-retry"},
    {"eager-conflict", "tm.abort.eager-conflict",
     "tm.retry_ns.eager-conflict"},
    {"locked-conflict", "tm.abort.locked-conflict",
     "tm.retry_ns.locked-conflict"},
    {"snapshot-stale", "tm.abort.snapshot-stale",
     "tm.retry_ns.snapshot-stale"},
    {"validation-cycle", "tm.abort.validation-cycle",
     "tm.retry_ns.validation-cycle"},
    {"order-inversion", "tm.abort.order-inversion",
     "tm.retry_ns.order-inversion"},
    {"window-eviction", "tm.abort.window-eviction",
     "tm.retry_ns.window-eviction"},
    {"capacity", "tm.abort.capacity", "tm.retry_ns.capacity"},
    {"conflict", "tm.abort.conflict", "tm.retry_ns.conflict"},
    {"timeout", "tm.abort.timeout", "tm.retry_ns.timeout"},
    {"backpressure", "tm.abort.backpressure", "tm.retry_ns.backpressure"},
    {"cross-shard-fence", "tm.abort.cross-shard-fence",
     "tm.retry_ns.cross-shard-fence"},
    {"unknown", "tm.abort.unknown", "tm.retry_ns.unknown"},
};

const ReasonNames&
names(AbortReason reason)
{
    const size_t i = static_cast<size_t>(reason);
    return kNames[i < kAbortReasonCount
                      ? i
                      : static_cast<size_t>(AbortReason::kUnknown)];
}

} // namespace

const char*
to_string(AbortReason reason)
{
    return names(reason).id;
}

const char*
abort_counter_name(AbortReason reason)
{
    return names(reason).counter;
}

const char*
retry_histogram_name(AbortReason reason)
{
    return names(reason).histogram;
}

} // namespace rococo::obs
