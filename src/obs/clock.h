/// @file
/// Monotonic nanosecond clock shared by the telemetry layer. One
/// function so every span, gauge sample and duty-cycle computation is
/// on the same timebase (steady_clock — trace timestamps must never go
/// backwards even if the wall clock is adjusted).
#pragma once

#include <chrono>
#include <cstdint>

namespace rococo::obs {

/// Nanoseconds on the process-wide monotonic clock.
inline uint64_t
now_ns()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace rococo::obs
