/// @file
/// Always-on flight recorder with triggered incident dumps.
///
/// A FlightRecorder periodically samples a small set of registry series
/// (abort rate, a watched latency p99, queue depth, shard imbalance)
/// into a bounded in-memory ring — the "what did the system look like
/// right before it went wrong" record. Trigger rules evaluated at each
/// sample (abort-rate threshold, p99 threshold) — or a manual dump
/// (svcctl dump / the kDump wire op) — atomically write the ring, a
/// full metrics snapshot, the hot-key top-K table and (optionally) the
/// tracer ring contents as one timestamped JSON incident file,
/// validated by scripts/check_trace_json.py --incident.
///
/// Threading: the recorder owns NO thread. Owners call tick(now) from
/// a loop they already run (svc::Server's poll loop, the
/// ValidationPipeline worker, the TM commit path); tick() is cheap when
/// no sample is due (one load + compare) and uses try_lock so two
/// owners never contend — a skipped tick is just a slightly late
/// sample. dump() takes the lock and may block briefly.
///
/// Tracer caveat: including trace events (config.include_trace) reads
/// the per-thread rings without locking out their owners, exactly like
/// TelemetrySession export. It is only safe when dump() runs on the
/// (sole) span-writing thread or while writers are quiescent — true
/// for svc::Server, whose service thread records every server span and
/// also runs tick()/kDump. Leave it off elsewhere.
///
/// Allocation: sampling reuses a preallocated ring and a scratch
/// registry whose metric maps stabilize after the first sample; the
/// request hot path never calls into the recorder at all, so the
/// zero-allocation envelope (tests/hotpath_alloc_test.cc) is untouched.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "obs/registry.h"

namespace rococo::obs {

struct FlightRecorderConfig
{
    /// Master switch — the "one config knob". Off: owners skip
    /// construction entirely.
    bool enabled = false;
    /// Incident files are written as "<output_prefix>-<seq>.json"
    /// (seq starts at 1), via a .tmp + rename so readers never see a
    /// partial file. Embed a pid in the prefix when several processes
    /// share a directory.
    std::string output_prefix = "incident";
    /// Sampling period; a sample is taken on the first tick() at least
    /// this long after the previous one.
    uint64_t sample_period_ns = 10'000'000; // 10 ms
    /// Ring capacity in samples (the incident's look-back horizon:
    /// capacity x period).
    size_t ring_capacity = 256;
    /// Counters summed into the "aborts" / "total" series of the
    /// abort-rate trigger (e.g. svc.verdict.abort-cycle et al. vs.
    /// svc.requests). Missing names read as 0.
    std::vector<std::string> abort_counters;
    std::vector<std::string> total_counters;
    /// Histogram whose p99 is sampled and (optionally) triggered on.
    std::string watch_histogram;
    /// Gauges sampled alongside; empty names sample as 0.
    std::string queue_gauge;
    std::string imbalance_gauge;
    /// Trigger: abort-rate (Δaborts/Δtotal between consecutive samples)
    /// above this fires a dump. 0 disables the rule.
    double abort_rate_threshold = 0.0;
    /// Minimum Δtotal before the abort-rate rule may fire, so a single
    /// abort in an idle period cannot trip it.
    uint64_t min_delta_total = 16;
    /// Trigger: watched p99 above this (ns) fires a dump. 0 disables.
    uint64_t p99_threshold_ns = 0;
    /// Minimum gap between *triggered* dumps (manual dumps ignore it).
    uint64_t cooldown_ns = 1'000'000'000;
    /// Include the tracer rings in incident files (see the caveat in
    /// the file comment).
    bool include_trace = false;
};

class FlightRecorder
{
  public:
    /// One ring entry. Counter fields are cumulative at sample time;
    /// abort_rate is the delta rate against the previous sample.
    struct Sample
    {
        uint64_t t_ns = 0;
        uint64_t aborts = 0;
        uint64_t total = 0;
        uint64_t p99_ns = 0;
        double abort_rate = 0.0;
        double queue_depth = 0.0;
        double imbalance = 0.0;
    };

    /// @p collect fills a scratch registry with the current metrics
    /// (typically: merge the owner's registry, then export derived
    /// gauges). Called under the recorder lock at every sample; the
    /// scratch is reset (values zeroed, names kept) beforehand, so the
    /// steady state re-uses its maps.
    using Collector = std::function<void(Registry&)>;

    FlightRecorder(FlightRecorderConfig config, Collector collect);

    FlightRecorder(const FlightRecorder&) = delete;
    FlightRecorder& operator=(const FlightRecorder&) = delete;

    const FlightRecorderConfig& config() const { return config_; }

    /// Serialized top-K JSON included in incidents (the ShardRouter's
    /// topk_json). Called under the recorder lock at dump time.
    void set_topk_source(std::function<void(std::string*)> source);

    /// Serialized health JSON embedded in every incident's "health"
    /// section (the HealthMonitor's status_json: sampler rings + SLO
    /// verdicts, so the offending series ships inside the incident
    /// file). Called under the recorder lock at dump time — the source
    /// must not call back into this recorder.
    void set_health_source(std::function<void(std::string*)> source);

    /// Sample if due, evaluate triggers, dump if one fired. Cheap when
    /// not due; skips (rather than blocks) when another thread holds
    /// the recorder.
    void tick(uint64_t now_ns);

    /// Write an incident file now. @p trigger names the cause in the
    /// file ("manual", "abort-rate", "p99"). Returns the final path, or
    /// "" on I/O failure.
    std::string dump(const char* trigger);

    /// External trigger source (the SloEngine's critical transitions,
    /// trigger "slo:<rule>"): dump now like a threshold trigger —
    /// unconditionally, but arming the cooldown so the recorder's own
    /// threshold rules stay quiet for cooldown_ns afterwards. The
    /// caller provides its own rate limiting (SLO hysteresis).
    std::string trigger(const char* name);

    uint64_t samples_taken() const;
    uint64_t dumps() const;
    /// Path of the most recent incident file ("" if none yet).
    std::string last_dump_path() const;

  private:
    void sample_locked(uint64_t now_ns);
    std::string dump_locked(const char* trigger, uint64_t now_ns);

    FlightRecorderConfig config_;
    Collector collect_;
    std::function<void(std::string*)> topk_source_;
    std::function<void(std::string*)> health_source_;

    mutable std::mutex mutex_;
    Registry scratch_;          ///< collector target, reset per sample
    std::vector<Sample> ring_;  ///< preallocated, ring_capacity entries
    size_t ring_head_ = 0;      ///< index of the oldest sample
    size_t ring_size_ = 0;
    uint64_t last_sample_ns_ = 0;
    uint64_t last_trigger_ns_ = 0;
    uint64_t samples_taken_ = 0;
    uint64_t dumps_ = 0;
    uint64_t next_seq_ = 1;
    std::string last_path_;
};

} // namespace rococo::obs
