#include "obs/telemetry.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <utility>

namespace rococo::obs {

namespace {

std::atomic<int> g_active_sessions{0};

/// Process-wide export sequence: every telemetry file a process writes
/// is stamped with a strictly increasing number, so a merger can reject
/// duplicate or out-of-order per-process files (stale leftovers from an
/// earlier run in the same directory look exactly like fresh exports
/// otherwise).
std::atomic<uint64_t> g_export_seq{0};

} // namespace

bool
telemetry_active()
{
    return g_active_sessions.load(std::memory_order_relaxed) > 0;
}

TelemetrySession::TelemetrySession(std::string out_path)
    : out_path_(std::move(out_path))
{
    if (out_path_.empty()) return;
    active_ = true;
    g_active_sessions.fetch_add(1, std::memory_order_relaxed);
    Tracer::instance().reset();
    Registry::global().reset();
    Tracer::instance().start();
}

bool
TelemetrySession::finish()
{
    if (finished_) return true;
    finished_ = true;
    if (!active_) return true;
    Tracer::instance().stop();
    g_active_sessions.fetch_sub(1, std::memory_order_relaxed);

    // Ring overwrites are silent on the hot path (by design); account
    // for them here so a truncated trace is visible in the metrics and
    // check_trace_json.py can flag it. The gauge is exported always —
    // including the zero — so --strict can tell "no drops" apart from
    // "nobody measured"; the counter keeps its historical
    // only-when-nonzero shape for existing consumers.
    const uint64_t dropped = Tracer::instance().dropped_events();
    if (dropped > 0) {
        Registry::global().counter("obs.trace.dropped").add(dropped);
    }
    Registry::global()
        .gauge("obs.trace.dropped_total")
        .set(static_cast<double>(dropped));

    std::ofstream out(out_path_);
    if (!out) {
        std::fprintf(stderr, "telemetry: cannot write %s\n",
                     out_path_.c_str());
        return false;
    }
    uint64_t base_ns = 0;
    out << "{\n\"traceEvents\": ";
    Tracer::instance().export_chrome_events(out, &base_ns);
    out << ",\n\"metrics\": ";
    Registry::global().to_json(out);
    // Perfetto ignores extra top-level keys; scripts/merge_trace_json.py
    // uses pid + the monotonic-clock base to re-align files exported by
    // different processes of the same run into one causal trace.
    out << ",\n\"meta\": {\"pid\": " << getpid()
        << ", \"base_time_ns\": " << base_ns << ", \"export_seq\": "
        << (g_export_seq.fetch_add(1, std::memory_order_relaxed) + 1)
        << "}\n}\n";
    return out.good();
}

TelemetrySession::~TelemetrySession()
{
    finish();
}

} // namespace rococo::obs
