#include "obs/telemetry.h"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <utility>

namespace rococo::obs {

namespace {

std::atomic<int> g_active_sessions{0};

} // namespace

bool
telemetry_active()
{
    return g_active_sessions.load(std::memory_order_relaxed) > 0;
}

TelemetrySession::TelemetrySession(std::string out_path)
    : out_path_(std::move(out_path))
{
    if (out_path_.empty()) return;
    active_ = true;
    g_active_sessions.fetch_add(1, std::memory_order_relaxed);
    Tracer::instance().reset();
    Registry::global().reset();
    Tracer::instance().start();
}

bool
TelemetrySession::finish()
{
    if (finished_) return true;
    finished_ = true;
    if (!active_) return true;
    Tracer::instance().stop();
    g_active_sessions.fetch_sub(1, std::memory_order_relaxed);

    std::ofstream out(out_path_);
    if (!out) {
        std::fprintf(stderr, "telemetry: cannot write %s\n",
                     out_path_.c_str());
        return false;
    }
    out << "{\n\"traceEvents\": ";
    Tracer::instance().export_chrome_events(out);
    out << ",\n\"metrics\": ";
    Registry::global().to_json(out);
    out << "\n}\n";
    return out.good();
}

TelemetrySession::~TelemetrySession()
{
    finish();
}

} // namespace rococo::obs
