#include "obs/telemetry.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <utility>

namespace rococo::obs {

namespace {

std::atomic<int> g_active_sessions{0};

} // namespace

bool
telemetry_active()
{
    return g_active_sessions.load(std::memory_order_relaxed) > 0;
}

TelemetrySession::TelemetrySession(std::string out_path)
    : out_path_(std::move(out_path))
{
    if (out_path_.empty()) return;
    active_ = true;
    g_active_sessions.fetch_add(1, std::memory_order_relaxed);
    Tracer::instance().reset();
    Registry::global().reset();
    Tracer::instance().start();
}

bool
TelemetrySession::finish()
{
    if (finished_) return true;
    finished_ = true;
    if (!active_) return true;
    Tracer::instance().stop();
    g_active_sessions.fetch_sub(1, std::memory_order_relaxed);

    // Ring overwrites are silent on the hot path (by design); account
    // for them here so a truncated trace is visible in the metrics and
    // check_trace_json.py can warn about it.
    const uint64_t dropped = Tracer::instance().dropped_events();
    if (dropped > 0) {
        Registry::global().counter("obs.trace.dropped").add(dropped);
    }

    std::ofstream out(out_path_);
    if (!out) {
        std::fprintf(stderr, "telemetry: cannot write %s\n",
                     out_path_.c_str());
        return false;
    }
    uint64_t base_ns = 0;
    out << "{\n\"traceEvents\": ";
    Tracer::instance().export_chrome_events(out, &base_ns);
    out << ",\n\"metrics\": ";
    Registry::global().to_json(out);
    // Perfetto ignores extra top-level keys; scripts/merge_trace_json.py
    // uses pid + the monotonic-clock base to re-align files exported by
    // different processes of the same run into one causal trace.
    out << ",\n\"meta\": {\"pid\": " << getpid()
        << ", \"base_time_ns\": " << base_ns << "}\n}\n";
    return out.good();
}

TelemetrySession::~TelemetrySession()
{
    finish();
}

} // namespace rococo::obs
