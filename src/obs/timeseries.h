/// @file
/// In-process metric time-series: a MetricSampler periodically
/// snapshots a configured set of sources — counters, counter ratios,
/// gauges, histogram quantiles, arbitrary callbacks — into
/// fixed-capacity per-series rings holding (value, delta, rate) points.
/// Where the kStats snapshot answers "what do the totals say *now*",
/// a series answers the operational questions the totals cannot:
/// abort-rate slope, queue-depth growth, p99 drift.
///
/// The sampler is the substrate the SloEngine (obs/health.h) evaluates
/// its multi-window burn-rate rules over, and the payload of the
/// kSeries wire op (svcctl watch / svcctl monitor).
///
/// Threading: like the FlightRecorder, the sampler owns NO thread.
/// Owners call tick(now) from a loop they already run (svc::Server's
/// poll loop, the TM per-attempt tick); tick() is one load + compare
/// when no sample is due and uses try_lock so concurrent owners never
/// contend. Readers (window(), to_json()) take the same mutex.
///
/// Allocation: construction resolves every source (metric pointers or
/// captured callbacks) and preallocates every ring; a steady-state
/// tick touches only those — no registry lookups, no strings, no heap
/// (tests/hotpath_alloc_test.cc extends its canary over an armed
/// sampler + SLO engine).
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "obs/registry.h"

namespace rococo::obs {

/// How a series derives its per-sample point from its source.
enum class SeriesKind : uint8_t
{
    kCounter,  ///< cumulative counter sum; value = rate/s over the interval
    kRatio,    ///< delta(numerators) / delta(denominators) per interval
    kGauge,    ///< last gauge sample
    kQuantile, ///< histogram quantile (cumulative distribution, sampled)
    kCallback, ///< arbitrary double() source
};

const char* to_string(SeriesKind kind);

/// One configured series. Sources are either direct metric pointers
/// (resolve them once, like the server's hoisted handles) or callbacks;
/// for kCounter/kRatio a callback may replace the pointer list when the
/// cumulative value is not a single registry counter (e.g. the TM's
/// live per-thread descriptor sums).
struct SeriesSpec
{
    std::string name;
    SeriesKind kind = SeriesKind::kCounter;
    /// kCounter: summed cumulative source. kRatio: numerator sum.
    std::vector<const Counter*> counters;
    /// kRatio: denominator sum.
    std::vector<const Counter*> denominators;
    /// kCounter/kRatio numerator fallback when counters is empty.
    std::function<double()> callback;
    /// kRatio denominator fallback when denominators is empty.
    std::function<double()> weight_callback;
    const Gauge* gauge = nullptr;                ///< kGauge source
    const LatencyHistogram* histogram = nullptr; ///< kQuantile source
    double quantile = 0.99;                      ///< kQuantile q
};

/// One ring entry.
///
///   raw    — the level: cumulative count (kCounter), interval ratio
///            (kRatio), sampled value (kGauge/kQuantile/kCallback)
///   value  — what SLO rules threshold on: rate/s for kCounter, the
///            interval ratio for kRatio, raw for the rest
///   delta  — change since the previous sample (counter/numerator
///            delta; raw delta for sampled kinds)
///   weight — window-aggregation weight: Δt seconds (kCounter),
///            denominator delta (kRatio), 1 (sampled kinds); a
///            weighted mean over a window therefore yields the true
///            windowed rate / ratio / mean respectively
///   has_delta — false for a series' first sample, whose delta, rate
///            and ratio are undefined (exported as null, shown as "-")
struct SeriesPoint
{
    uint64_t t_ns = 0;
    double raw = 0.0;
    double value = 0.0;
    double delta = 0.0;
    double weight = 0.0;
    bool has_delta = false;
};

/// Fixed-capacity point ring, oldest-first indexing.
class SeriesRing
{
  public:
    explicit SeriesRing(size_t capacity);

    void push(const SeriesPoint& point);
    size_t size() const { return size_; }
    size_t capacity() const { return ring_.size(); }
    const SeriesPoint& at(size_t i) const
    {
        return ring_[(head_ + i) % ring_.size()];
    }
    const SeriesPoint& back() const { return at(size_ - 1); }

  private:
    std::vector<SeriesPoint> ring_;
    size_t head_ = 0;
    size_t size_ = 0;
};

/// Weighted aggregate of the ring points inside [now - window, now].
struct WindowStat
{
    double value = 0.0;   ///< weighted mean of point values
    double weight = 0.0;  ///< total weight (Δt s / Δdenominator / #points)
    uint64_t span_ns = 0; ///< now - oldest in-window point
    size_t points = 0;    ///< in-window points contributing a value
};

WindowStat window_aggregate(const SeriesRing& ring, uint64_t now_ns,
                            uint64_t window_ns);

struct MetricSamplerConfig
{
    /// Sampling period; a sample is taken on the first tick() at least
    /// this long after the previous one.
    uint64_t sample_period_ns = 250'000'000; // 250 ms
    /// Per-series ring capacity (the look-back horizon: capacity x
    /// period — the default pair covers a 60 s slow window).
    size_t ring_capacity = 256;
    std::vector<SeriesSpec> series;
};

class MetricSampler
{
  public:
    explicit MetricSampler(MetricSamplerConfig config);

    MetricSampler(const MetricSampler&) = delete;
    MetricSampler& operator=(const MetricSampler&) = delete;

    const MetricSamplerConfig& config() const { return config_; }
    size_t series_count() const { return series_.size(); }
    const std::string& series_name(size_t i) const
    {
        return series_[i].spec.name;
    }
    /// Index of the named series, or -1.
    int index_of(const std::string& name) const;

    /// Sample every series if a period has elapsed. Returns true iff a
    /// sample was taken; cheap when not due, skips (rather than blocks)
    /// when another thread holds the sampler.
    bool tick(uint64_t now_ns);

    /// Unconditional sample (tests, forced refresh); blocks on the lock.
    void sample_now(uint64_t now_ns);

    uint64_t samples_taken() const;

    /// Windowed aggregate of one series (see WindowStat).
    WindowStat window(size_t series, uint64_t now_ns,
                      uint64_t window_ns) const;

    /// Most recent point of one series; has_delta == false and t_ns == 0
    /// when the series has no samples yet.
    SeriesPoint last_point(size_t series) const;

    /// {"now_ns": .., "period_ns": .., "series": [{"name": ..,
    ///  "kind": .., "last": <raw>, "rate": <value>|null,
    ///  "points": [[t_ns, raw, value|null], ...]}, ...]}
    /// "rate"/point value are null until the series has two samples —
    /// the wire-visible fix for first-iteration garbage rates.
    void to_json(std::string* out) const;

  private:
    struct Series
    {
        SeriesSpec spec;
        SeriesRing ring;
        double prev_num = 0.0; ///< previous cumulative numerator
        double prev_den = 0.0; ///< previous cumulative denominator
        bool primed = false;   ///< prev_* valid (one sample taken)
    };

    void sample_locked(uint64_t now_ns);

    MetricSamplerConfig config_;
    mutable std::mutex mutex_;
    std::vector<Series> series_;
    uint64_t last_sample_ns_ = 0;
    uint64_t samples_taken_ = 0;
};

} // namespace rococo::obs
