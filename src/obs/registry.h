/// @file
/// Metrics registry: named counters, gauges and HDR-style latency
/// histograms behind stable references, with JSON/CSV export and
/// cross-thread merging. This unifies the ad-hoc CounterBag plumbing
/// that used to be spread over the TM runtimes, the validation
/// pipeline and the simulator:
///
///   * Counter — monotonically increasing, lock-free (relaxed atomic);
///     safe to share between threads or to keep per-thread and merge.
///   * Gauge — last-value + running min/max/mean over set() samples
///     (queue depth, window occupancy, duty cycle, ...).
///   * LatencyHistogram — log2-bucketed (HDR-style: ~2x relative
///     error), lock-free record(), quantile estimation by bucket
///     interpolation. Designed for nanosecond latencies.
///
/// Lookup by name takes a mutex; hot paths should look a metric up
/// once and keep the reference (references stay valid for the
/// registry's lifetime; metrics are never removed).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/stats.h"

namespace rococo::obs {

/// Monotonically increasing counter; add() is lock-free.
class Counter
{
  public:
    void add(uint64_t by = 1) { value_.fetch_add(by, std::memory_order_relaxed); }
    uint64_t value() const { return value_.load(std::memory_order_relaxed); }
    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<uint64_t> value_{0};
};

/// Sampled value: keeps the last sample plus running min/max/mean.
class Gauge
{
  public:
    void set(double value);

    double value() const;   ///< last sample (0 before any)
    double min() const;     ///< smallest sample
    double max() const;     ///< largest sample
    double mean() const;    ///< mean of all samples
    uint64_t samples() const;

    /// Fold another gauge's samples into this one (other's last sample
    /// becomes the last value).
    void merge(const Gauge& other);

    void reset();

  private:
    mutable std::mutex mutex_;
    double last_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
    uint64_t n_ = 0;
};

/// Log2-bucketed latency histogram over uint64 samples (nanoseconds by
/// convention). record() is lock-free; quantiles carry at most one
/// power-of-two bucket of relative error, like HDR histograms at one
/// significant digit.
class LatencyHistogram
{
  public:
    static constexpr size_t kBuckets = 64;

    void record(uint64_t value);

    uint64_t count() const { return count_.load(std::memory_order_relaxed); }
    uint64_t max() const { return max_.load(std::memory_order_relaxed); }
    /// Exact smallest recorded sample (0 with no samples) — the log2
    /// buckets only bound quantiles to a power of two, so min/max are
    /// tracked exactly alongside them.
    uint64_t min() const
    {
        const uint64_t v = min_.load(std::memory_order_relaxed);
        return v == kNoMin ? 0 : v;
    }
    uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
    double mean() const;

    /// Value below which fraction @p q (clamped to [0,1]) of samples
    /// fall, interpolated within the containing log2 bucket and clamped
    /// to the observed maximum. 0 with no samples.
    uint64_t quantile(double q) const;

    uint64_t bucket_count(size_t i) const
    {
        return buckets_[i].load(std::memory_order_relaxed);
    }

    void merge(const LatencyHistogram& other);

    void reset();

  private:
    /// min_ sentinel before any sample (so recording 0 stays exact).
    static constexpr uint64_t kNoMin = ~uint64_t{0};

    std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
    std::atomic<uint64_t> count_{0};
    std::atomic<uint64_t> sum_{0};
    std::atomic<uint64_t> max_{0};
    std::atomic<uint64_t> min_{kNoMin};
};

/// Named metric store. Thread-safe: registration under a mutex, metric
/// updates at the metric's own granularity (see class comments).
class Registry
{
  public:
    Registry() = default;
    Registry(const Registry&) = delete;
    Registry& operator=(const Registry&) = delete;

    Counter& counter(const std::string& name);
    Gauge& gauge(const std::string& name);
    LatencyHistogram& histogram(const std::string& name);

    /// CounterBag-compatible shorthand for counter(name).add(by).
    void bump(const std::string& name, uint64_t by = 1)
    {
        counter(name).add(by);
    }

    /// Counter value, 0 if absent (CounterBag-compatible read).
    uint64_t get(const std::string& name) const;

    /// Fold @p other into this registry (counters add, histograms add
    /// bucket-wise, gauges merge their sample statistics).
    void merge(const Registry& other);

    /// Ingest legacy string-keyed counters.
    void add(const CounterBag& bag);

    /// Counters-only view for the CounterBag-returning public APIs.
    CounterBag to_counter_bag() const;

    /// Zero every metric (references stay valid).
    void reset();

    /// JSON object: {"counters":{..},"gauges":{..},"histograms":{..}}.
    /// Histograms export count/mean/min/max and p50/p90/p99.
    void to_json(std::ostream& out) const;

    /// Flat CSV: kind,name,field,value — one row per exported scalar.
    void to_csv(std::ostream& out) const;

    /// Prometheus text exposition (text/plain; version 0.0.4): counters
    /// as "<name>_total" counter families, gauges as gauge families
    /// (last sample), histograms as summary families (quantile samples
    /// + _sum/_count) with exact extremes as companion _min/_max
    /// gauges. Metric names are sanitized to the Prometheus charset
    /// ([a-zA-Z_:][a-zA-Z0-9_:]*, '.' and '-' become '_').
    /// scripts/check_prom.py lints this output in CI.
    void export_prom(std::ostream& out) const;

    /// Process-wide registry the runtime-level telemetry records into
    /// while a TelemetrySession is active.
    static Registry& global();

    /// Atomically (.tmp + rename) write export_prom() to @p path — the
    /// node-exporter textfile-collector contract, so a scraper never
    /// reads a half-written exposition. False on I/O failure.
    bool export_prom_file(const std::string& path) const;

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
};

} // namespace rococo::obs
