/// @file
/// Telemetry session: the one switch that turns the tracer and the
/// global metrics registry on for a measured region and writes a single
/// self-contained JSON file at the end:
///
///   {
///     "traceEvents": [ ...Chrome trace-event array... ],
///     "metrics": { "counters": {...}, "gauges": {...},
///                  "histograms": {...} },
///     "meta": { "pid": ..., "base_time_ns": ... }
///   }
///
/// "meta" records which process wrote the file and the monotonic-clock
/// value its (rebased) timestamps are relative to, so
/// scripts/merge_trace_json.py can splice files from several processes
/// of one run into a single causally-aligned trace.
///
/// The file loads directly in Perfetto / `chrome://tracing` (extra
/// top-level keys are ignored there), and `scripts/check_trace_json.py`
/// cross-checks the two halves (per-reason abort counters vs. span
/// counts).
///
/// Usage, typically from a bench main() after common/cli parsing:
///
///   obs::TelemetrySession session(cli.get("telemetry-out"));
///   ... run the workload ...
///   // ~TelemetrySession stops tracing and writes the file (or call
///   // session.finish() to get the status).
///
/// An empty path constructs an inactive session: nothing is recorded
/// and nothing is written, so call sites need no branching.
#pragma once

#include <string>

#include "obs/registry.h"
#include "obs/tracer.h"

namespace rococo::obs {

/// True while some TelemetrySession is recording. Instrumented code
/// that pays a non-trivial cost to *compute* a metric (as opposed to
/// bumping a counter) should check this first.
bool telemetry_active();

class TelemetrySession
{
  public:
    /// Start recording if @p out_path is non-empty; inert otherwise.
    /// Resets the tracer and the global registry so the file covers
    /// exactly this session.
    explicit TelemetrySession(std::string out_path);

    TelemetrySession(const TelemetrySession&) = delete;
    TelemetrySession& operator=(const TelemetrySession&) = delete;

    /// Stop recording and write the combined JSON file. Returns false
    /// if the file could not be written (also for inert sessions:
    /// nothing to write is reported as true). Idempotent.
    bool finish();

    bool active() const { return active_; }
    const std::string& path() const { return out_path_; }

    ~TelemetrySession();

  private:
    std::string out_path_;
    bool active_ = false;
    bool finished_ = false;
};

} // namespace rococo::obs
