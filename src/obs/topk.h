/// @file
/// Fixed-size space-saving top-K sketch (Metwally et al.'s
/// stream-summary, linear-scan variant) for hot-key attribution on the
/// validation hot path.
///
/// The sketch tracks at most K (key, count, error) entries in a flat
/// array. offer(key) either bumps an existing entry, fills a free one,
/// or — when full — replaces the minimum-count entry, inheriting its
/// count as the new entry's over-estimation error. The classic
/// guarantees hold:
///
///   * count(k)          >= true_count(k)   (never under-counts)
///   * count(k) - error(k) <= true_count(k) (error bounds the slack)
///   * any key with true_count > offered/ (K+1) is present
///
/// so under a skewed (zipf) stream the true hot set is guaranteed to
/// surface, which tests/topk_test.cc pins against an exact-count
/// oracle.
///
/// Everything is a fixed-capacity array scanned linearly: no heap, no
/// hashing, no pointers — offer() is allocation-free by construction,
/// so feeding it from the engine's abort path cannot disturb the
/// zero-allocation envelope (tests/hotpath_alloc_test.cc). K stays
/// small (the default 16 covers any plausible "hot set" display), so
/// the linear scan is a few cache lines.
///
/// Not thread-safe: ownership follows the engine it instruments, which
/// is already externally serialized (engine mutex / shard lock).
#pragma once

#include <cstddef>
#include <cstdint>

namespace rococo::obs {

class TopK
{
  public:
    /// Entry capacity: fixed at compile time so the sketch embeds in
    /// the engine with zero indirection.
    static constexpr size_t kCapacity = 16;

    struct Entry
    {
        uint64_t key = 0;
        uint64_t count = 0; ///< estimated occurrences (never under)
        uint64_t error = 0; ///< max over-estimation of count
    };

    /// Record one occurrence of @p key (weight @p weight).
    void offer(uint64_t key, uint64_t weight = 1)
    {
        offered_ += weight;
        size_t min_at = 0;
        for (size_t i = 0; i < size_; ++i) {
            if (entries_[i].key == key) {
                entries_[i].count += weight;
                return;
            }
            if (entries_[i].count < entries_[min_at].count) min_at = i;
        }
        if (size_ < kCapacity) {
            entries_[size_++] = {key, weight, 0};
            return;
        }
        // Full: evict the minimum, inheriting its count as error.
        Entry& victim = entries_[min_at];
        victim.error = victim.count;
        victim.count += weight;
        victim.key = key;
    }

    size_t size() const { return size_; }

    /// Total weight offered since construction / reset().
    uint64_t offered() const { return offered_; }

    const Entry& entry(size_t i) const { return entries_[i]; }

    /// Copy up to @p capacity entries into @p out, sorted by descending
    /// count (insertion sort over at most kCapacity elements — no
    /// allocation). Returns the number written.
    size_t snapshot(Entry* out, size_t capacity) const
    {
        size_t n = 0;
        for (size_t i = 0; i < size_; ++i) {
            const Entry& e = entries_[i];
            size_t at = n;
            while (at > 0 && out[at - 1].count < e.count) --at;
            if (at >= capacity) continue; // below everything kept
            const size_t end = n < capacity ? n : capacity - 1;
            for (size_t j = end; j > at; --j) out[j] = out[j - 1];
            out[at] = e;
            if (n < capacity) ++n;
        }
        return n;
    }

    void reset()
    {
        size_ = 0;
        offered_ = 0;
    }

  private:
    Entry entries_[kCapacity];
    size_t size_ = 0;
    uint64_t offered_ = 0;
};

} // namespace rococo::obs
