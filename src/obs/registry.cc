#include "obs/registry.h"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <vector>

namespace rococo::obs {

void
Gauge::set(double value)
{
    std::lock_guard<std::mutex> lock(mutex_);
    last_ = value;
    min_ = n_ ? std::min(min_, value) : value;
    max_ = n_ ? std::max(max_, value) : value;
    sum_ += value;
    ++n_;
}

double
Gauge::value() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return last_;
}

double
Gauge::min() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return min_;
}

double
Gauge::max() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return max_;
}

double
Gauge::mean() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return n_ ? sum_ / static_cast<double>(n_) : 0.0;
}

uint64_t
Gauge::samples() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return n_;
}

void
Gauge::merge(const Gauge& other)
{
    double o_last, o_min, o_max, o_sum;
    uint64_t o_n;
    {
        std::lock_guard<std::mutex> lock(other.mutex_);
        o_last = other.last_;
        o_min = other.min_;
        o_max = other.max_;
        o_sum = other.sum_;
        o_n = other.n_;
    }
    if (o_n == 0) return;
    std::lock_guard<std::mutex> lock(mutex_);
    min_ = n_ ? std::min(min_, o_min) : o_min;
    max_ = n_ ? std::max(max_, o_max) : o_max;
    sum_ += o_sum;
    n_ += o_n;
    last_ = o_last;
}

void
Gauge::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    last_ = min_ = max_ = sum_ = 0.0;
    n_ = 0;
}

namespace {

/// Bucket i holds samples in [2^(i-1), 2^i); bucket 0 holds 0.
size_t
bucket_index(uint64_t value)
{
    return static_cast<size_t>(std::bit_width(value));
}

} // namespace

void
LatencyHistogram::record(uint64_t value)
{
    const size_t i = std::min(bucket_index(value), kBuckets - 1);
    buckets_[i].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    uint64_t seen = max_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
    uint64_t low = min_.load(std::memory_order_relaxed);
    while (value < low &&
           !min_.compare_exchange_weak(low, value,
                                       std::memory_order_relaxed)) {
    }
}

double
LatencyHistogram::mean() const
{
    const uint64_t n = count();
    return n ? static_cast<double>(sum_.load(std::memory_order_relaxed)) /
                   static_cast<double>(n)
             : 0.0;
}

uint64_t
LatencyHistogram::quantile(double q) const
{
    const uint64_t n = count();
    if (n == 0) return 0;
    q = std::clamp(q, 0.0, 1.0);
    const double target = q * static_cast<double>(n);
    double seen = 0.0;
    for (size_t i = 0; i < kBuckets; ++i) {
        const double in_bucket =
            static_cast<double>(buckets_[i].load(std::memory_order_relaxed));
        if (in_bucket == 0.0) continue;
        if (seen + in_bucket >= target) {
            // Interpolate inside [2^(i-1), 2^i); bucket 0 is exactly 0.
            if (i == 0) return 0;
            const double lo = static_cast<double>(uint64_t{1} << (i - 1));
            const double frac = (target - seen) / in_bucket;
            const uint64_t estimate =
                static_cast<uint64_t>(lo + lo * std::max(frac, 0.0));
            // Clamp into the exact observed range: a quantile can never
            // fall below the smallest or above the largest sample.
            return std::clamp(estimate, min(), max());
        }
        seen += in_bucket;
    }
    return max();
}

void
LatencyHistogram::merge(const LatencyHistogram& other)
{
    for (size_t i = 0; i < kBuckets; ++i) {
        const uint64_t v = other.buckets_[i].load(std::memory_order_relaxed);
        if (v) buckets_[i].fetch_add(v, std::memory_order_relaxed);
    }
    count_.fetch_add(other.count(), std::memory_order_relaxed);
    sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
    uint64_t seen = max_.load(std::memory_order_relaxed);
    const uint64_t o = other.max();
    while (o > seen &&
           !max_.compare_exchange_weak(seen, o, std::memory_order_relaxed)) {
    }
    const uint64_t o_min = other.min_.load(std::memory_order_relaxed);
    uint64_t low = min_.load(std::memory_order_relaxed);
    while (o_min < low &&
           !min_.compare_exchange_weak(low, o_min,
                                       std::memory_order_relaxed)) {
    }
}

void
LatencyHistogram::reset()
{
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
    min_.store(kNoMin, std::memory_order_relaxed);
}

Counter&
Registry::counter(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = counters_[name];
    if (!slot) slot = std::make_unique<Counter>();
    return *slot;
}

Gauge&
Registry::gauge(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = gauges_[name];
    if (!slot) slot = std::make_unique<Gauge>();
    return *slot;
}

LatencyHistogram&
Registry::histogram(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = histograms_[name];
    if (!slot) slot = std::make_unique<LatencyHistogram>();
    return *slot;
}

uint64_t
Registry::get(const std::string& name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second->value();
}

void
Registry::merge(const Registry& other)
{
    // Snapshot other's metric pointers, then update ours outside its
    // lock (metric objects are internally synchronized and never
    // removed).
    std::vector<std::pair<std::string, const Counter*>> counters;
    std::vector<std::pair<std::string, const Gauge*>> gauges;
    std::vector<std::pair<std::string, const LatencyHistogram*>> hists;
    {
        std::lock_guard<std::mutex> lock(other.mutex_);
        for (const auto& [name, c] : other.counters_)
            counters.emplace_back(name, c.get());
        for (const auto& [name, g] : other.gauges_)
            gauges.emplace_back(name, g.get());
        for (const auto& [name, h] : other.histograms_)
            hists.emplace_back(name, h.get());
    }
    for (const auto& [name, c] : counters) {
        const uint64_t v = c->value();
        if (v) counter(name).add(v);
    }
    for (const auto& [name, g] : gauges) gauge(name).merge(*g);
    for (const auto& [name, h] : hists) histogram(name).merge(*h);
}

void
Registry::add(const CounterBag& bag)
{
    for (const auto& [name, value] : bag.counters()) {
        if (value) counter(name).add(value);
    }
}

CounterBag
Registry::to_counter_bag() const
{
    CounterBag bag;
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, c] : counters_) {
        const uint64_t v = c->value();
        if (v) bag.bump(name, v);
    }
    return bag;
}

void
Registry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [name, c] : counters_) c->reset();
    for (auto& [name, g] : gauges_) g->reset();
    for (auto& [name, h] : histograms_) h->reset();
}

void
Registry::to_json(std::ostream& out) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    char buf[320]; // widest row: a histogram with seven u64-sized fields
    out << "{\n  \"counters\": {";
    bool first = true;
    for (const auto& [name, c] : counters_) {
        std::snprintf(buf, sizeof(buf), "%s\n    \"%s\": %" PRIu64,
                      first ? "" : ",", name.c_str(), c->value());
        out << buf;
        first = false;
    }
    out << "\n  },\n  \"gauges\": {";
    first = true;
    for (const auto& [name, g] : gauges_) {
        std::snprintf(buf, sizeof(buf),
                      "%s\n    \"%s\": {\"last\": %g, \"min\": %g, "
                      "\"max\": %g, \"mean\": %g, \"samples\": %" PRIu64
                      "}",
                      first ? "" : ",", name.c_str(), g->value(), g->min(),
                      g->max(), g->mean(), g->samples());
        out << buf;
        first = false;
    }
    out << "\n  },\n  \"histograms\": {";
    first = true;
    for (const auto& [name, h] : histograms_) {
        std::snprintf(buf, sizeof(buf),
                      "%s\n    \"%s\": {\"count\": %" PRIu64
                      ", \"mean\": %g, \"min\": %" PRIu64
                      ", \"max\": %" PRIu64
                      ", \"p50\": %" PRIu64 ", \"p90\": %" PRIu64
                      ", \"p99\": %" PRIu64 "}",
                      first ? "" : ",", name.c_str(), h->count(), h->mean(),
                      h->min(), h->max(), h->quantile(0.5), h->quantile(0.9),
                      h->quantile(0.99));
        out << buf;
        first = false;
    }
    out << "\n  }\n}";
}

void
Registry::to_csv(std::ostream& out) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    char buf[192];
    out << "kind,name,field,value\n";
    for (const auto& [name, c] : counters_) {
        std::snprintf(buf, sizeof(buf), "counter,%s,value,%" PRIu64 "\n",
                      name.c_str(), c->value());
        out << buf;
    }
    for (const auto& [name, g] : gauges_) {
        std::snprintf(buf, sizeof(buf), "gauge,%s,last,%g\n", name.c_str(),
                      g->value());
        out << buf;
        std::snprintf(buf, sizeof(buf), "gauge,%s,mean,%g\n", name.c_str(),
                      g->mean());
        out << buf;
        std::snprintf(buf, sizeof(buf), "gauge,%s,max,%g\n", name.c_str(),
                      g->max());
        out << buf;
    }
    for (const auto& [name, h] : histograms_) {
        std::snprintf(buf, sizeof(buf), "histogram,%s,count,%" PRIu64 "\n",
                      name.c_str(), h->count());
        out << buf;
        std::snprintf(buf, sizeof(buf), "histogram,%s,mean,%g\n",
                      name.c_str(), h->mean());
        out << buf;
        std::snprintf(buf, sizeof(buf), "histogram,%s,min,%" PRIu64 "\n",
                      name.c_str(), h->min());
        out << buf;
        std::snprintf(buf, sizeof(buf), "histogram,%s,max,%" PRIu64 "\n",
                      name.c_str(), h->max());
        out << buf;
        std::snprintf(buf, sizeof(buf), "histogram,%s,p99,%" PRIu64 "\n",
                      name.c_str(), h->quantile(0.99));
        out << buf;
    }
}

namespace {

/// Sanitize a dotted metric name into the Prometheus charset.
std::string
prom_name(const std::string& name)
{
    std::string out;
    out.reserve(name.size());
    for (char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == ':';
        out.push_back(ok ? c : '_');
    }
    if (out.empty() || (out[0] >= '0' && out[0] <= '9')) {
        out.insert(out.begin(), '_');
    }
    return out;
}

} // namespace

void
Registry::export_prom(std::ostream& out) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    char buf[320];
    for (const auto& [name, c] : counters_) {
        const std::string n = prom_name(name) + "_total";
        std::snprintf(buf, sizeof(buf),
                      "# TYPE %s counter\n%s %" PRIu64 "\n", n.c_str(),
                      n.c_str(), c->value());
        out << buf;
    }
    for (const auto& [name, g] : gauges_) {
        const std::string n = prom_name(name);
        std::snprintf(buf, sizeof(buf), "# TYPE %s gauge\n%s %g\n",
                      n.c_str(), n.c_str(), g->value());
        out << buf;
    }
    for (const auto& [name, h] : histograms_) {
        const std::string n = prom_name(name);
        std::snprintf(buf, sizeof(buf),
                      "# TYPE %s summary\n"
                      "%s{quantile=\"0.5\"} %" PRIu64 "\n"
                      "%s{quantile=\"0.9\"} %" PRIu64 "\n"
                      "%s{quantile=\"0.99\"} %" PRIu64 "\n",
                      n.c_str(), n.c_str(), h->quantile(0.5), n.c_str(),
                      h->quantile(0.9), n.c_str(), h->quantile(0.99));
        out << buf;
        std::snprintf(buf, sizeof(buf),
                      "%s_sum %" PRIu64 "\n%s_count %" PRIu64 "\n",
                      n.c_str(), h->sum(), n.c_str(), h->count());
        out << buf;
        // Exact extremes ride along as companion gauges — the summary
        // type has no native min/max sample.
        std::snprintf(buf, sizeof(buf),
                      "# TYPE %s_min gauge\n%s_min %" PRIu64 "\n"
                      "# TYPE %s_max gauge\n%s_max %" PRIu64 "\n",
                      n.c_str(), n.c_str(), h->min(), n.c_str(), n.c_str(),
                      h->max());
        out << buf;
    }
}

Registry&
Registry::global()
{
    static Registry registry;
    return registry;
}

bool
Registry::export_prom_file(const std::string& path) const
{
    const std::string tmp = path + ".tmp";
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return false;
    export_prom(out);
    out.close();
    if (!out) {
        std::remove(tmp.c_str());
        return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

} // namespace rococo::obs
