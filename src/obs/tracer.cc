#include "obs/tracer.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <ostream>

namespace rococo::obs {

Tracer&
Tracer::instance()
{
    static Tracer tracer;
    return tracer;
}

Tracer::ThreadBuffer&
Tracer::buffer()
{
    // One ring per thread, owned by the tracer (so it outlives the
    // thread), bound through a cached thread-local pointer. Buffers are
    // never destroyed before process exit — reset() empties them in
    // place — so the cache cannot dangle.
    thread_local ThreadBuffer* cached = nullptr;
    if (cached) return *cached;

    std::lock_guard<std::mutex> lock(mutex_);
    auto owned = std::make_unique<ThreadBuffer>();
    owned->tid = static_cast<uint32_t>(buffers_.size());
    owned->ring.resize(capacity_);
    cached = owned.get();
    buffers_.push_back(std::move(owned));
    return *cached;
}

void
Tracer::set_thread_capacity(size_t events)
{
    std::lock_guard<std::mutex> lock(mutex_);
    capacity_ = std::max<size_t>(events, 1);
    for (auto& buf : buffers_) {
        buf->head = 0;
        buf->ring.assign(capacity_, TraceEvent{});
    }
}

void
Tracer::record(TraceEvent event)
{
    ThreadBuffer& buf = buffer();
    event.tid = buf.tid;
    buf.ring[buf.head % buf.ring.size()] = event;
    ++buf.head;
}

void
Tracer::counter(const char* name, uint64_t value)
{
    TraceEvent event;
    event.name = name;
    event.arg_name = name;
    event.arg_value = value;
    event.ts_ns = now_ns();
    event.phase = EventPhase::kCounter;
    record(event);
}

void
Tracer::instant(const char* cat, const char* name)
{
    TraceEvent event;
    event.name = name;
    event.cat = cat;
    event.ts_ns = now_ns();
    event.phase = EventPhase::kInstant;
    record(event);
}

void
Tracer::flow(EventPhase phase, const char* cat, const char* name,
             uint64_t id, uint64_t ts_ns)
{
    TraceEvent event;
    event.name = name;
    event.cat = cat;
    event.ts_ns = ts_ns;
    event.arg_value = id;
    event.phase = phase;
    record(event);
}

size_t
Tracer::thread_count() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return buffers_.size();
}

uint64_t
Tracer::dropped_events() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    uint64_t dropped = 0;
    for (const auto& buf : buffers_) {
        if (buf->head > buf->ring.size()) {
            dropped += buf->head - buf->ring.size();
        }
    }
    return dropped;
}

void
Tracer::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& buf : buffers_) buf->head = 0;
}

std::vector<TraceEvent>
Tracer::snapshot() const
{
    std::vector<TraceEvent> events;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto& buf : buffers_) {
            const size_t capacity = buf->ring.size();
            const size_t count = std::min<uint64_t>(buf->head, capacity);
            // Oldest surviving event first.
            const uint64_t first = buf->head - count;
            for (uint64_t i = 0; i < count; ++i) {
                events.push_back(buf->ring[(first + i) % capacity]);
            }
        }
    }
    std::sort(events.begin(), events.end(),
              [](const TraceEvent& a, const TraceEvent& b) {
                  return a.ts_ns < b.ts_ns;
              });
    return events;
}

void
Tracer::export_chrome_events(std::ostream& out, uint64_t* base_ns_out) const
{
    const std::vector<TraceEvent> events = snapshot();
    const uint64_t base = events.empty() ? 0 : events.front().ts_ns;
    if (base_ns_out != nullptr) *base_ns_out = base;

    out << "[";
    char line[256];
    bool first = true;
    for (const TraceEvent& e : events) {
        if (!e.name) continue; // defensively skip unwritten slots
        const double ts_us = static_cast<double>(e.ts_ns - base) / 1000.0;
        if (!first) out << ",";
        first = false;
        out << "\n";
        switch (e.phase) {
          case EventPhase::kComplete:
            std::snprintf(line, sizeof(line),
                          "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
                          "\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%u",
                          e.name, e.cat ? e.cat : "default", ts_us,
                          static_cast<double>(e.dur_ns) / 1000.0, e.tid);
            out << line;
            if (e.arg_name) {
                std::snprintf(line, sizeof(line),
                              ",\"args\":{\"%s\":%" PRIu64 "}", e.arg_name,
                              e.arg_value);
                out << line;
            }
            out << "}";
            break;
          case EventPhase::kCounter:
            std::snprintf(line, sizeof(line),
                          "{\"name\":\"%s\",\"ph\":\"C\",\"ts\":%.3f,"
                          "\"pid\":1,\"tid\":%u,\"args\":{\"%s\":%" PRIu64
                          "}}",
                          e.name, ts_us, e.tid,
                          e.arg_name ? e.arg_name : "value", e.arg_value);
            out << line;
            break;
          case EventPhase::kInstant:
            std::snprintf(line, sizeof(line),
                          "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\","
                          "\"ts\":%.3f,\"pid\":1,\"tid\":%u,\"s\":\"t\"}",
                          e.name, e.cat ? e.cat : "default", ts_us, e.tid);
            out << line;
            break;
          case EventPhase::kFlowStart:
          case EventPhase::kFlowEnd:
            // The two halves of an arrow share (cat, name, id); "bp":"e"
            // binds the head to the enclosing slice instead of the next
            // one, which is what a request/response pair wants.
            std::snprintf(line, sizeof(line),
                          "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%c\","
                          "\"ts\":%.3f,\"pid\":1,\"tid\":%u,"
                          "\"id\":\"0x%" PRIx64 "\"%s}",
                          e.name, e.cat ? e.cat : "default",
                          static_cast<char>(e.phase), ts_us, e.tid,
                          e.arg_value,
                          e.phase == EventPhase::kFlowEnd ? ",\"bp\":\"e\""
                                                          : "");
            out << line;
            break;
        }
    }
    out << "\n]";
}

} // namespace rococo::obs
