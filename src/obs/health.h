/// @file
/// Declarative service health: an SloEngine evaluates multi-window
/// burn-rate rules over MetricSampler rings and produces typed health
/// states with hysteresis.
///
/// Rule semantics (the classic fast/slow burn-rate pair):
///
///   * each rule watches one series and one threshold;
///   * the FAST window (default 5 s) aggregate breaching the threshold
///     means "something is spiking" — the rule goes kWarn;
///   * the SLOW window (default 60 s) aggregate *also* breaching —
///     with the ring actually covering at least half that window, so a
///     two-sample burst cannot impersonate a sustained burn — means
///     "and it is sustained" — the rule goes kCritical;
///   * ratio rules additionally require min_weight of denominator
///     traffic inside the fast window, so one abort in an idle second
///     cannot trip anything.
///
/// Escalation is immediate; de-escalation needs recovery_samples
/// consecutive calmer evaluations (hysteresis), so a flapping series
/// produces one incident, not one per oscillation.
///
/// The engine is wired into the FlightRecorder as a trigger source: a
/// transition *into* kCritical fires an incident dump named
/// "slo:<rule>", and every incident (whatever its trigger) embeds the
/// sampler rings + rule verdicts via the recorder's health source — the
/// offending series ships inside the incident file.
///
/// HealthMonitor composes sampler + engine behind the single tick()
/// owners already call (svc::Server's poll loop, the TM per-attempt
/// tick). Steady-state ticks are allocation-free; only a state
/// transition (rare by construction) allocates, in the dump path.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/timeseries.h"

namespace rococo::obs {

enum class HealthState : uint8_t
{
    kOk = 0,
    kWarn = 1,
    kCritical = 2,
};

const char* to_string(HealthState state);

/// One burn-rate rule over one sampler series.
struct SloRule
{
    std::string name;   ///< incident trigger suffix ("slo:<name>")
    std::string series; ///< MetricSampler series name
    /// Breach boundary on the windowed aggregate (rate for counter
    /// series, ratio for ratio series, mean for sampled series).
    /// 0 disables the rule.
    double threshold = 0.0;
    uint64_t fast_window_ns = 5'000'000'000;  ///< 5 s
    uint64_t slow_window_ns = 60'000'000'000; ///< 60 s
    /// Minimum fast-window weight (denominator traffic for ratio
    /// rules, seconds for counter rules, points for sampled rules)
    /// before the rule may leave kOk.
    double min_weight = 1.0;
    /// Consecutive calmer evaluations required to de-escalate.
    unsigned recovery_samples = 3;
};

struct SloEngineConfig
{
    std::vector<SloRule> rules;
    /// Per-rule transition-history ring capacity (incident forensics:
    /// the ok -> warn -> critical path survives into the dump).
    size_t transition_capacity = 16;
};

class SloEngine
{
  public:
    /// @p sampler must outlive the engine; rules naming unknown series
    /// are dropped (a config typo disables a rule, never crashes a
    /// server).
    SloEngine(SloEngineConfig config, const MetricSampler* sampler);

    SloEngine(const SloEngine&) = delete;
    SloEngine& operator=(const SloEngine&) = delete;

    size_t rule_count() const { return rules_.size(); }

    /// Re-evaluate every rule against the sampler rings. Transitions
    /// are reported through the hook *after* the engine lock is
    /// released (so a hook may re-enter health_json / the recorder).
    void evaluate(uint64_t now_ns);

    /// Worst state across rules.
    HealthState overall() const;

    struct RuleStatus
    {
        HealthState state = HealthState::kOk;
        double fast = 0.0;        ///< fast-window aggregate
        double slow = 0.0;        ///< slow-window aggregate
        double fast_weight = 0.0; ///< fast-window traffic weight
        bool slow_covered = false;
    };
    RuleStatus status(size_t rule) const;
    const SloRule& rule(size_t i) const { return rules_[i].rule; }

    using TransitionHook = std::function<void(
        const SloRule&, HealthState from, HealthState to)>;
    void set_transition_hook(TransitionHook hook);

    /// {"state": "ok|warn|critical", "rules": [{"name", "series",
    ///  "state", "threshold", "fast", "slow", "fast_weight",
    ///  "transitions": [{"t_ns", "from", "to"}, ...]}, ...]}
    void to_json(std::string* out) const;

  private:
    struct Transition
    {
        uint64_t t_ns = 0;
        HealthState from = HealthState::kOk;
        HealthState to = HealthState::kOk;
    };
    struct Rule
    {
        SloRule rule;
        int series = -1;
        HealthState state = HealthState::kOk;
        unsigned calm_evals = 0; ///< consecutive evals below state
        RuleStatus last;
        std::vector<Transition> transitions; ///< ring, preallocated
        size_t transition_head = 0;
        size_t transition_size = 0;
    };

    SloEngineConfig config_;
    const MetricSampler* sampler_;
    TransitionHook hook_;
    mutable std::mutex mutex_;
    std::vector<Rule> rules_;
};

/// Owner-facing knobs for the default monitoring stack (the server's
/// ServerConfig::monitor / the TM's RococoTmConfig::monitor). A
/// threshold of 0 disables that rule; the series are sampled
/// regardless, so svcctl watch/monitor always have data.
struct MonitorConfig
{
    /// Master switch. The server defaults it on (monitoring is the
    /// point of running a service); the TM defaults it off like the
    /// flight recorder (library embedders opt in).
    bool enabled = true;
    uint64_t sample_period_ns = 250'000'000; // 250 ms
    size_t ring_capacity = 256;              ///< 64 s at 250 ms
    uint64_t fast_window_ns = 5'000'000'000;
    uint64_t slow_window_ns = 60'000'000'000;
    unsigned recovery_samples = 3;
    /// Abort-ratio rule (aborts / requests over the window).
    double abort_rate_threshold = 0.9;
    /// svc.stage.engine p99 rule, ns. 0 disables (latency budgets are
    /// deployment-specific).
    uint64_t p99_threshold_ns = 0;
    /// Queue-depth rule. 0 lets the owner pick a default (the server
    /// uses 90% of max_pending).
    double queue_threshold = 0.0;
    /// shard.imbalance rule (max/mean per-shard validations). 0
    /// disables (meaningless for a single shard).
    double imbalance_threshold = 0.0;
};

/// Sampler + engine behind one tick, with the FlightRecorder wiring.
class HealthMonitor
{
  public:
    HealthMonitor(MetricSamplerConfig sampler_config,
                  SloEngineConfig slo_config);

    MetricSampler& sampler() { return sampler_; }
    const MetricSampler& sampler() const { return sampler_; }
    SloEngine& slo() { return slo_; }
    const SloEngine& slo() const { return slo_; }

    /// Route SLO breaches into @p recorder: a transition into
    /// kCritical dumps an incident ("slo:<rule>"), and the recorder's
    /// health source is pointed at status_json() so *every* incident
    /// embeds the rings and verdicts. Call before ticking starts.
    void set_incident_recorder(FlightRecorder* recorder);

    /// Sample if due; on a fresh sample, re-evaluate the rules (and
    /// fire any armed incident hooks). Allocation-free steady state.
    void tick(uint64_t now_ns);

    /// {"now_ns": .., "health": <SloEngine::to_json>,
    ///  "series": <MetricSampler::to_json>} — the kSeries payload and
    /// the incident "health" section.
    void status_json(std::string* out) const;

  private:
    MetricSampler sampler_;
    SloEngine slo_;
};

} // namespace rococo::obs
