/// @file
/// The fixed-size record the tracer's per-thread ring buffers hold.
/// Name/category/argument-name fields are `const char*` on purpose:
/// they must point at string literals (or other static-duration
/// strings), so recording a span is a handful of word stores — no
/// allocation, no copy, no hashing on the hot path.
#pragma once

#include <cstdint>

namespace rococo::obs {

/// Chrome trace-event phases the tracer emits.
enum class EventPhase : char
{
    kComplete = 'X',  ///< a span: ts + dur
    kCounter = 'C',   ///< a named time-series sample (queue depth, ...)
    kInstant = 'i',   ///< a point event
    kFlowStart = 's', ///< flow start: arrow tail (arg_value = flow id)
    kFlowEnd = 'f',   ///< flow end: arrow head (arg_value = flow id)
};

struct TraceEvent
{
    const char* name = nullptr;     ///< static string
    const char* cat = nullptr;      ///< static string (may be null)
    const char* arg_name = nullptr; ///< static string; null = no arg
    uint64_t ts_ns = 0;             ///< start time (monotonic ns)
    uint64_t dur_ns = 0;            ///< span duration (kComplete only)
    uint64_t arg_value = 0;         ///< arg / counter / flow-id value
    uint32_t tid = 0;               ///< tracer-assigned thread id
    EventPhase phase = EventPhase::kComplete;
};

} // namespace rococo::obs
