/// @file
/// Typed abort-cause taxonomy shared by every layer that can reject a
/// transaction: the CPU-side eager detector (Algorithm 1), the FPGA
/// validator (Manager verdicts), the baselines and the trace-level CC
/// algorithms. Replaces string-keyed counter names, so the runtime, the
/// benches and the telemetry exports can never silently drift apart.
///
/// The taxonomy mirrors the questions the paper's evaluation asks of an
/// abort: was it a true data conflict, an artifact of signature false
/// positives, a commit-order (phantom-ordering) inversion, or a
/// resource limit (sliding-window eviction / HTM capacity)?
#pragma once

#include <cstddef>
#include <cstdint>

namespace rococo::obs {

enum class AbortReason : uint8_t
{
    /// Not aborted (descriptor default between attempts).
    kNone = 0,
    /// The body called Tx::retry() — a condition wait, not a conflict.
    kExplicitRetry,
    /// CPU-side eager detection: a read hit the miss set, so no
    /// consistent snapshot exists (Fig. 8 (d)). Conservative — includes
    /// signature false positives the eager path cannot distinguish.
    kEagerConflict,
    /// A read raced a commit-time-locked cell while the snapshot was
    /// already broken (2PL: could not acquire the lock).
    kLockedConflict,
    /// Snapshot extension fell off the commit log / version history
    /// (the transaction is too old to be caught up).
    kSnapshotStale,
    /// Validation: committing would close a ->rw cycle (a true
    /// serializability violation, or a signature false positive adding
    /// a spurious edge).
    kValidationCycle,
    /// Timestamp/commit-order inversion without a proven cycle — the
    /// "phantom ordering" aborts ROCoCo avoids but TOCC-style
    /// validators incur.
    kOrderInversion,
    /// The snapshot predates the sliding window: updates of an evicted
    /// commit may have been neglected (§4.2).
    kWindowEviction,
    /// HTM capacity overflow (read/write set exceeded the simulated
    /// transactional cache).
    kCapacity,
    /// Generic data conflict reported by a baseline that does not
    /// attribute further (version mismatch, doomed HTM transaction).
    kConflict,
    /// A validation deadline elapsed before the verdict arrived —
    /// either a ValidationPipeline::validate() timeout or a service
    /// request whose wire deadline expired in the server queue. Not a
    /// data conflict: the transaction may retry immediately.
    kTimeout,
    /// The validation service shed load: its bounded request queue was
    /// full, so the request was rejected with an explicit
    /// retry-later verdict instead of growing the queue (svc/server.h
    /// backpressure contract).
    kBackpressure,
    /// Sharded validation (src/shard): the transaction tried to
    /// serialize before a cross-shard commit — either a cross-shard
    /// transaction with a forward dependency, or a single-shard
    /// transaction with a forward dependency behind its shard's fence.
    /// Conservative, not a proven cycle: the coordination rule that
    /// keeps the union of per-shard reachability graphs acyclic
    /// (docs/SHARDING.md).
    kCrossShardFence,
    /// The runtime did not attribute the abort.
    kUnknown,
};

inline constexpr size_t kAbortReasonCount =
    static_cast<size_t>(AbortReason::kUnknown) + 1;

/// Short stable identifier, e.g. "eager-conflict".
const char* to_string(AbortReason reason);

/// Registry counter name for aborts of this cause: "tm.abort.<reason>".
/// The per-reason counters sum to the "tm.abort" total by construction
/// (both are bumped at the same attribution site).
const char* abort_counter_name(AbortReason reason);

/// Registry histogram name for the latency of attempts that ended in
/// this abort cause: "tm.retry_ns.<reason>".
const char* retry_histogram_name(AbortReason reason);

} // namespace rococo::obs
