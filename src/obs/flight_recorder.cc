#include "obs/flight_recorder.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <unistd.h>

#include "obs/clock.h"
#include "obs/tracer.h"

namespace rococo::obs {

FlightRecorder::FlightRecorder(FlightRecorderConfig config, Collector collect)
    : config_(std::move(config)), collect_(std::move(collect))
{
    if (config_.ring_capacity == 0) config_.ring_capacity = 1;
    ring_.resize(config_.ring_capacity);
}

void
FlightRecorder::set_topk_source(std::function<void(std::string*)> source)
{
    std::lock_guard<std::mutex> lock(mutex_);
    topk_source_ = std::move(source);
}

void
FlightRecorder::set_health_source(std::function<void(std::string*)> source)
{
    std::lock_guard<std::mutex> lock(mutex_);
    health_source_ = std::move(source);
}

void
FlightRecorder::tick(uint64_t now_ns)
{
    // Fast pre-check outside the lock: torn reads of last_sample_ns_
    // are impossible on the platforms we target (aligned u64), and a
    // stale value only skews one sampling decision by a period.
    if (now_ns - last_sample_ns_ < config_.sample_period_ns) return;
    std::unique_lock<std::mutex> lock(mutex_, std::try_to_lock);
    if (!lock.owns_lock()) return;
    if (now_ns - last_sample_ns_ < config_.sample_period_ns) return;
    sample_locked(now_ns);
}

void
FlightRecorder::sample_locked(uint64_t now_ns)
{
    const Sample* prev =
        ring_size_ > 0
            ? &ring_[(ring_head_ + ring_size_ - 1) % ring_.size()]
            : nullptr;

    scratch_.reset();
    if (collect_) collect_(scratch_);

    Sample s;
    s.t_ns = now_ns;
    for (const auto& name : config_.abort_counters)
        s.aborts += scratch_.get(name);
    for (const auto& name : config_.total_counters)
        s.total += scratch_.get(name);
    if (!config_.watch_histogram.empty())
        s.p99_ns = scratch_.histogram(config_.watch_histogram).quantile(0.99);
    if (!config_.queue_gauge.empty())
        s.queue_depth = scratch_.gauge(config_.queue_gauge).value();
    if (!config_.imbalance_gauge.empty())
        s.imbalance = scratch_.gauge(config_.imbalance_gauge).value();

    // Rate over the inter-sample delta, not the lifetime ratio: the
    // trigger must see a *spike*, and a long healthy run would otherwise
    // dilute it below threshold forever.
    if (prev != nullptr && s.total >= prev->total) {
        const uint64_t dt = s.total - prev->total;
        const uint64_t da = s.aborts >= prev->aborts ? s.aborts - prev->aborts
                                                     : 0;
        if (dt >= config_.min_delta_total && dt > 0) {
            // Clamped: the collector reads live counters one by one,
            // so under a full-tilt abort storm the abort delta can
            // slightly outrun the total read a moment earlier.
            s.abort_rate = std::min(
                1.0, static_cast<double>(da) / static_cast<double>(dt));
        }
    }

    if (ring_size_ < ring_.size()) {
        ring_[(ring_head_ + ring_size_) % ring_.size()] = s;
        ++ring_size_;
    } else {
        ring_[ring_head_] = s;
        ring_head_ = (ring_head_ + 1) % ring_.size();
    }
    last_sample_ns_ = now_ns;
    ++samples_taken_;

    const bool cooled =
        last_trigger_ns_ == 0 ||
        now_ns - last_trigger_ns_ >= config_.cooldown_ns;
    if (!cooled) return;
    const char* trigger = nullptr;
    if (config_.abort_rate_threshold > 0.0 &&
        s.abort_rate > config_.abort_rate_threshold) {
        trigger = "abort-rate";
    } else if (config_.p99_threshold_ns > 0 &&
               s.p99_ns > config_.p99_threshold_ns) {
        trigger = "p99";
    }
    if (trigger != nullptr) {
        last_trigger_ns_ = now_ns;
        dump_locked(trigger, now_ns);
    }
}

std::string
FlightRecorder::dump(const char* trigger)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return dump_locked(trigger, obs::now_ns());
}

std::string
FlightRecorder::trigger(const char* name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const uint64_t now_ns = obs::now_ns();
    last_trigger_ns_ = now_ns;
    return dump_locked(name, now_ns);
}

std::string
FlightRecorder::dump_locked(const char* trigger, uint64_t now_ns)
{
    const uint64_t seq = next_seq_++;
    char buf[192];
    std::string path = config_.output_prefix;
    std::snprintf(buf, sizeof buf, "-%" PRIu64 ".json", seq);
    path += buf;
    const std::string tmp = path + ".tmp";

    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return {};

    std::snprintf(buf, sizeof buf,
                  "{\n\"incident\": {\"trigger\": \"%s\", \"pid\": %d, "
                  "\"seq\": %" PRIu64 ", \"t_ns\": %" PRIu64 "},\n",
                  trigger, static_cast<int>(::getpid()), seq, now_ns);
    out << buf;

    out << "\"samples\": [";
    for (size_t i = 0; i < ring_size_; ++i) {
        const Sample& s = ring_[(ring_head_ + i) % ring_.size()];
        std::snprintf(buf, sizeof buf,
                      "%s\n{\"t_ns\": %" PRIu64 ", \"aborts\": %" PRIu64
                      ", \"total\": %" PRIu64 ", \"abort_rate\": %g"
                      ", \"p99_ns\": %" PRIu64 ", \"queue_depth\": %g"
                      ", \"imbalance\": %g}",
                      i == 0 ? "" : ",", s.t_ns, s.aborts, s.total,
                      s.abort_rate, s.p99_ns, s.queue_depth, s.imbalance);
        out << buf;
    }
    out << "\n],\n";

    // The last sample already collected a fresh snapshot into scratch_;
    // re-collect so a manual dump between samples is not stale.
    scratch_.reset();
    if (collect_) collect_(scratch_);
    out << "\"metrics\": ";
    scratch_.to_json(out);
    out << ",\n\"topk\": ";
    if (topk_source_) {
        std::string topk;
        topk_source_(&topk);
        out << topk;
    } else {
        out << "{\"shards\": []}";
    }

    out << ",\n\"health\": ";
    if (health_source_) {
        std::string health;
        health_source_(&health);
        out << health;
    } else {
        out << "{}";
    }

    out << ",\n\"traceEvents\": ";
    if (config_.include_trace && Tracer::instance().active()) {
        // Safe only on the span-writing thread / under quiescence — see
        // the header caveat. export_chrome_events emits the full array.
        Tracer::instance().export_chrome_events(out, nullptr);
    } else {
        out << "[]";
    }
    out << "\n}\n";
    out.close();
    if (!out) {
        std::remove(tmp.c_str());
        return {};
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return {};
    }
    ++dumps_;
    last_path_ = path;
    return path;
}

uint64_t
FlightRecorder::samples_taken() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return samples_taken_;
}

uint64_t
FlightRecorder::dumps() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return dumps_;
}

std::string
FlightRecorder::last_dump_path() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return last_path_;
}

} // namespace rococo::obs
