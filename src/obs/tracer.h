/// @file
/// Low-overhead transaction-lifecycle tracer.
///
/// Design: one global Tracer owns a ring buffer per participating
/// thread. The owning thread appends events without synchronization
/// (the buffer is touched by exactly one writer); the ring overwrites
/// its oldest events when full, so tracing never blocks or allocates on
/// the hot path after the first event of a thread. Export merges all
/// rings into Chrome trace-event JSON loadable in Perfetto or
/// `chrome://tracing`.
///
/// Cost model, so instrumentation can be left in production paths:
///   * tracing idle (no TelemetrySession): one relaxed atomic load per
///     TRACE_* site;
///   * tracing active: two clock reads + one ring store per span;
///   * compiled out (-DROCOCO_TRACE=OFF, which defines
///     ROCOCO_TRACE_OFF): TRACE_* macros expand to nothing and
///     ScopedSpan is an empty type — zero overhead, pay-for-what-you-
///     use.
///
/// Export is only sensible while instrumented threads are quiescent
/// (stopped, or between runs): snapshot() reads the rings without
/// locking out their owners.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/clock.h"
#include "obs/trace_event.h"

#ifdef ROCOCO_TRACE_OFF
#define ROCOCO_TRACE_ENABLED 0
#else
#define ROCOCO_TRACE_ENABLED 1
#endif

namespace rococo::obs {

class Tracer
{
  public:
    /// The process-wide tracer the TRACE_* macros record into.
    static Tracer& instance();

    /// Begin recording. Thread buffers are created lazily on first
    /// record per thread.
    void start() { active_.store(true, std::memory_order_relaxed); }

    /// Stop recording; buffered events remain available for export.
    void stop() { active_.store(false, std::memory_order_relaxed); }

    bool active() const { return active_.load(std::memory_order_relaxed); }

    /// Ring capacity, in events, of buffers created after the call;
    /// existing buffers are resized (callers must be quiescent).
    void set_thread_capacity(size_t events);

    /// Append @p event to the calling thread's ring (owner-thread only;
    /// the tid field is filled in by the tracer).
    void record(TraceEvent event);

    /// Record a counter sample (time-series value, e.g. queue depth).
    void counter(const char* name, uint64_t value);

    /// Record an instant event.
    void instant(const char* cat, const char* name);

    /// Record a flow event (@p phase must be kFlowStart or kFlowEnd) at
    /// @p ts_ns. The two halves of an arrow must share (cat, name, id);
    /// Perfetto draws it from the 's' event to the 'f' event even when
    /// they live in different processes of a merged trace.
    void flow(EventPhase phase, const char* cat, const char* name,
              uint64_t id, uint64_t ts_ns);

    /// Number of thread buffers created so far.
    size_t thread_count() const;

    /// Total events overwritten (ring full) across all threads since
    /// the last reset()/set_thread_capacity(). TelemetrySession surfaces
    /// this as the obs.trace.dropped counter so a truncated trace is
    /// never mistaken for a complete one.
    uint64_t dropped_events() const;

    /// Drop all buffered events (buffers stay registered, so cached
    /// thread-local bindings stay valid). Callers must be quiescent.
    void reset();

    /// Merged copy of every ring, sorted by start timestamp. Callers
    /// must be quiescent.
    std::vector<TraceEvent> snapshot() const;

    /// Write the merged events as a Chrome trace-event JSON *array*
    /// (the caller provides the {"traceEvents": ...} envelope, so
    /// metrics can ride along in the same file). Timestamps are rebased
    /// to the earliest event; when @p base_ns_out is non-null it
    /// receives that base so a merger can re-align files from several
    /// processes sharing the monotonic clock (TelemetrySession records
    /// it in the "meta" envelope key).
    void export_chrome_events(std::ostream& out,
                              uint64_t* base_ns_out = nullptr) const;

  private:
    struct ThreadBuffer
    {
        uint32_t tid = 0;
        uint64_t head = 0; ///< total events ever pushed
        std::vector<TraceEvent> ring;
    };

    ThreadBuffer& buffer();

    std::atomic<bool> active_{false};
    mutable std::mutex mutex_; ///< guards buffers_ registration/export
    std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
    size_t capacity_ = size_t{1} << 13; ///< events per thread
};

#if ROCOCO_TRACE_ENABLED

/// RAII span: records a complete ("X") event covering its lifetime.
/// Capture decision is taken at construction; all strings must be
/// static. Use the TRACE_SPAN macros unless the span needs a
/// late-bound argument (e.g. the cid assigned by validation).
class ScopedSpan
{
  public:
    ScopedSpan(const char* cat, const char* name)
    {
        if (Tracer::instance().active()) {
            cat_ = cat;
            name_ = name;
            start_ = now_ns();
        }
    }

    ScopedSpan(const char* cat, const char* name, const char* arg_name,
               uint64_t arg_value)
        : ScopedSpan(cat, name)
    {
        arg(arg_name, arg_value);
    }

    ScopedSpan(const ScopedSpan&) = delete;
    ScopedSpan& operator=(const ScopedSpan&) = delete;

    /// Attach (or overwrite) the span's single integer argument.
    void
    arg(const char* name, uint64_t value)
    {
        arg_name_ = name;
        arg_value_ = value;
    }

    ~ScopedSpan()
    {
        if (!name_) return;
        TraceEvent event;
        event.name = name_;
        event.cat = cat_;
        event.arg_name = arg_name_;
        event.arg_value = arg_value_;
        event.ts_ns = start_;
        event.dur_ns = now_ns() - start_;
        event.phase = EventPhase::kComplete;
        Tracer::instance().record(event);
    }

  private:
    const char* name_ = nullptr; ///< null = not capturing
    const char* cat_ = nullptr;
    const char* arg_name_ = nullptr;
    uint64_t arg_value_ = 0;
    uint64_t start_ = 0;
};

#define ROCOCO_TRACE_CONCAT2(a, b) a##b
#define ROCOCO_TRACE_CONCAT(a, b) ROCOCO_TRACE_CONCAT2(a, b)

/// Span covering the rest of the enclosing scope.
#define TRACE_SPAN(cat, name)                                              \
    ::rococo::obs::ScopedSpan ROCOCO_TRACE_CONCAT(rococo_trace_span_,      \
                                                  __COUNTER__)(cat, name)

/// Span with one integer argument known up front.
#define TRACE_SPAN_ARG(cat, name, arg_name, arg_value)                     \
    ::rococo::obs::ScopedSpan ROCOCO_TRACE_CONCAT(rococo_trace_span_,      \
                                                  __COUNTER__)(            \
        cat, name, arg_name, static_cast<uint64_t>(arg_value))

/// Time-series sample (rendered as a counter track in Perfetto).
#define TRACE_COUNTER(name, value)                                         \
    do {                                                                   \
        auto& rococo_trace_tracer = ::rococo::obs::Tracer::instance();     \
        if (rococo_trace_tracer.active()) {                                \
            rococo_trace_tracer.counter(name,                              \
                                        static_cast<uint64_t>(value));     \
        }                                                                  \
    } while (0)

/// Point event.
#define TRACE_INSTANT(cat, name)                                           \
    do {                                                                   \
        auto& rococo_trace_tracer = ::rococo::obs::Tracer::instance();     \
        if (rococo_trace_tracer.active()) {                                \
            rococo_trace_tracer.instant(cat, name);                        \
        }                                                                  \
    } while (0)

#else // !ROCOCO_TRACE_ENABLED

/// Tracing compiled out: an empty type, so direct users (spans that
/// need a late-bound arg) still compile to nothing.
class ScopedSpan
{
  public:
    ScopedSpan(const char*, const char*) {}
    ScopedSpan(const char*, const char*, const char*, uint64_t) {}
    ScopedSpan(const ScopedSpan&) = delete;
    ScopedSpan& operator=(const ScopedSpan&) = delete;
    void arg(const char*, uint64_t) {}
};

#define TRACE_SPAN(cat, name)                                              \
    do {                                                                   \
    } while (0)
#define TRACE_SPAN_ARG(cat, name, arg_name, arg_value)                     \
    do {                                                                   \
    } while (0)
#define TRACE_COUNTER(name, value)                                         \
    do {                                                                   \
    } while (0)
#define TRACE_INSTANT(cat, name)                                           \
    do {                                                                   \
    } while (0)

#endif // ROCOCO_TRACE_ENABLED

} // namespace rococo::obs
