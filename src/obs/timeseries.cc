#include "obs/timeseries.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace rococo::obs {

const char*
to_string(SeriesKind kind)
{
    switch (kind) {
    case SeriesKind::kCounter: return "counter";
    case SeriesKind::kRatio: return "ratio";
    case SeriesKind::kGauge: return "gauge";
    case SeriesKind::kQuantile: return "quantile";
    case SeriesKind::kCallback: return "callback";
    }
    return "?";
}

SeriesRing::SeriesRing(size_t capacity)
{
    ring_.resize(std::max<size_t>(capacity, 2));
}

void
SeriesRing::push(const SeriesPoint& point)
{
    if (size_ < ring_.size()) {
        ring_[(head_ + size_) % ring_.size()] = point;
        ++size_;
    } else {
        ring_[head_] = point;
        head_ = (head_ + 1) % ring_.size();
    }
}

WindowStat
window_aggregate(const SeriesRing& ring, uint64_t now_ns, uint64_t window_ns)
{
    WindowStat stat;
    double weighted_sum = 0.0;
    // Newest-first until we fall off the window; rings are small (a few
    // hundred points), so a linear walk is fine.
    for (size_t i = ring.size(); i-- > 0;) {
        const SeriesPoint& p = ring.at(i);
        if (now_ns - p.t_ns > window_ns) break;
        if (!p.has_delta && p.weight == 0.0) continue; // unprimed first point
        weighted_sum += p.value * p.weight;
        stat.weight += p.weight;
        ++stat.points;
        stat.span_ns = now_ns - p.t_ns;
    }
    if (stat.weight > 0.0) stat.value = weighted_sum / stat.weight;
    return stat;
}

MetricSampler::MetricSampler(MetricSamplerConfig config)
    : config_(std::move(config))
{
    if (config_.sample_period_ns == 0) config_.sample_period_ns = 1;
    series_.reserve(config_.series.size());
    for (auto& spec : config_.series) {
        series_.push_back({spec, SeriesRing(config_.ring_capacity), 0.0,
                           0.0, false});
    }
}

int
MetricSampler::index_of(const std::string& name) const
{
    for (size_t i = 0; i < series_.size(); ++i) {
        if (series_[i].spec.name == name) return static_cast<int>(i);
    }
    return -1;
}

bool
MetricSampler::tick(uint64_t now_ns)
{
    // Same fast pre-check as FlightRecorder::tick — a torn/stale read
    // of last_sample_ns_ only skews one sampling decision by a period.
    if (now_ns - last_sample_ns_ < config_.sample_period_ns) return false;
    std::unique_lock<std::mutex> lock(mutex_, std::try_to_lock);
    if (!lock.owns_lock()) return false;
    if (now_ns - last_sample_ns_ < config_.sample_period_ns) return false;
    sample_locked(now_ns);
    return true;
}

void
MetricSampler::sample_now(uint64_t now_ns)
{
    std::lock_guard<std::mutex> lock(mutex_);
    sample_locked(now_ns);
}

void
MetricSampler::sample_locked(uint64_t now_ns)
{
    for (Series& s : series_) {
        SeriesPoint p;
        p.t_ns = now_ns;
        const uint64_t prev_t =
            s.ring.size() ? s.ring.back().t_ns : 0;
        const double dt_s =
            s.primed ? static_cast<double>(now_ns - prev_t) / 1e9 : 0.0;

        switch (s.spec.kind) {
        case SeriesKind::kCounter: {
            double cum = 0.0;
            if (!s.spec.counters.empty()) {
                for (const Counter* c : s.spec.counters)
                    cum += static_cast<double>(c->value());
            } else if (s.spec.callback) {
                cum = s.spec.callback();
            }
            p.raw = cum;
            if (s.primed && dt_s > 0.0) {
                p.delta = std::max(0.0, cum - s.prev_num);
                p.value = p.delta / dt_s; // rate/s
                p.weight = dt_s;
                p.has_delta = true;
            }
            s.prev_num = cum;
            break;
        }
        case SeriesKind::kRatio: {
            double num = 0.0, den = 0.0;
            if (!s.spec.counters.empty()) {
                for (const Counter* c : s.spec.counters)
                    num += static_cast<double>(c->value());
            } else if (s.spec.callback) {
                num = s.spec.callback();
            }
            if (!s.spec.denominators.empty()) {
                for (const Counter* c : s.spec.denominators)
                    den += static_cast<double>(c->value());
            } else if (s.spec.weight_callback) {
                den = s.spec.weight_callback();
            }
            if (s.primed) {
                const double dnum = std::max(0.0, num - s.prev_num);
                const double dden = std::max(0.0, den - s.prev_den);
                // Clamped like the recorder's abort rate: the sources
                // are read one by one, so under a full-tilt storm the
                // numerator delta can slightly outrun the denominator.
                p.value = dden > 0.0 ? std::min(1.0, dnum / dden) : 0.0;
                p.raw = p.value;
                p.delta = dnum;
                p.weight = dden;
                p.has_delta = true;
            }
            s.prev_num = num;
            s.prev_den = den;
            break;
        }
        case SeriesKind::kGauge:
        case SeriesKind::kQuantile:
        case SeriesKind::kCallback: {
            double v = 0.0;
            if (s.spec.kind == SeriesKind::kGauge && s.spec.gauge) {
                v = s.spec.gauge->value();
            } else if (s.spec.kind == SeriesKind::kQuantile &&
                       s.spec.histogram) {
                v = static_cast<double>(
                    s.spec.histogram->quantile(s.spec.quantile));
            } else if (s.spec.kind == SeriesKind::kCallback &&
                       s.spec.callback) {
                v = s.spec.callback();
            }
            p.raw = v;
            p.value = v;
            p.weight = 1.0;
            if (s.primed) {
                p.delta = v - s.prev_num;
                p.has_delta = true;
            }
            s.prev_num = v;
            break;
        }
        }
        s.ring.push(p);
        s.primed = true;
    }
    last_sample_ns_ = now_ns;
    ++samples_taken_;
}

uint64_t
MetricSampler::samples_taken() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return samples_taken_;
}

WindowStat
MetricSampler::window(size_t series, uint64_t now_ns,
                      uint64_t window_ns) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return window_aggregate(series_[series].ring, now_ns, window_ns);
}

SeriesPoint
MetricSampler::last_point(size_t series) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const SeriesRing& ring = series_[series].ring;
    return ring.size() ? ring.back() : SeriesPoint{};
}

namespace {

/// True when the point's value field is meaningful: rates/ratios need
/// a previous sample, sampled kinds are valid from the first point.
bool
value_valid(SeriesKind kind, const SeriesPoint& p)
{
    return p.has_delta || kind == SeriesKind::kGauge ||
           kind == SeriesKind::kQuantile || kind == SeriesKind::kCallback;
}

} // namespace

void
MetricSampler::to_json(std::string* out) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "{\"now_ns\": %" PRIu64 ", \"period_ns\": %" PRIu64
                  ", \"series\": [",
                  last_sample_ns_, config_.sample_period_ns);
    *out += buf;
    for (size_t i = 0; i < series_.size(); ++i) {
        const Series& s = series_[i];
        std::snprintf(buf, sizeof buf, "%s\n{\"name\": \"%s\", \"kind\": "
                                       "\"%s\", ",
                      i == 0 ? "" : ",", s.spec.name.c_str(),
                      to_string(s.spec.kind));
        *out += buf;
        if (s.ring.size() == 0) {
            *out += "\"last\": null, \"rate\": null, \"points\": []}";
            continue;
        }
        const SeriesPoint& last = s.ring.back();
        std::snprintf(buf, sizeof buf, "\"last\": %g, ", last.raw);
        *out += buf;
        if (value_valid(s.spec.kind, last)) {
            std::snprintf(buf, sizeof buf, "\"rate\": %g, ", last.value);
            *out += buf;
        } else {
            *out += "\"rate\": null, ";
        }
        *out += "\"points\": [";
        for (size_t j = 0; j < s.ring.size(); ++j) {
            const SeriesPoint& p = s.ring.at(j);
            if (value_valid(s.spec.kind, p)) {
                std::snprintf(buf, sizeof buf,
                              "%s[%" PRIu64 ", %g, %g]", j == 0 ? "" : ",",
                              p.t_ns, p.raw, p.value);
            } else {
                std::snprintf(buf, sizeof buf,
                              "%s[%" PRIu64 ", %g, null]",
                              j == 0 ? "" : ",", p.t_ns, p.raw);
            }
            *out += buf;
        }
        *out += "]}";
    }
    *out += "\n]}";
}

} // namespace rococo::obs
