#include "obs/health.h"

#include <algorithm>
#include <array>
#include <cinttypes>
#include <cstdio>

namespace rococo::obs {

const char*
to_string(HealthState state)
{
    switch (state) {
    case HealthState::kOk: return "ok";
    case HealthState::kWarn: return "warn";
    case HealthState::kCritical: return "critical";
    }
    return "?";
}

SloEngine::SloEngine(SloEngineConfig config, const MetricSampler* sampler)
    : config_(std::move(config)), sampler_(sampler)
{
    for (const SloRule& rule : config_.rules) {
        if (rule.threshold <= 0.0) continue; // disabled
        const int series = sampler_->index_of(rule.series);
        if (series < 0) continue; // unknown series: rule off, not UB
        Rule r;
        r.rule = rule;
        r.series = series;
        r.transitions.resize(std::max<size_t>(config_.transition_capacity, 1));
        rules_.push_back(std::move(r));
    }
}

void
SloEngine::set_transition_hook(TransitionHook hook)
{
    std::lock_guard<std::mutex> lock(mutex_);
    hook_ = std::move(hook);
}

void
SloEngine::evaluate(uint64_t now_ns)
{
    // Transitions are collected under the lock and the hook fires after
    // release: the hook reaches into the FlightRecorder, whose dump path
    // re-enters us through the health source — holding our lock across
    // it would deadlock. The fixed buffer keeps the steady state (and
    // even a full transition sweep of a realistic rule set) heap-free.
    struct Fired
    {
        const SloRule* rule;
        HealthState from, to;
    };
    std::array<Fired, 16> fired;
    size_t n_fired = 0;
    TransitionHook hook;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        hook = hook_;
        for (Rule& r : rules_) {
            const WindowStat fast = sampler_->window(
                static_cast<size_t>(r.series), now_ns, r.rule.fast_window_ns);
            const WindowStat slow = sampler_->window(
                static_cast<size_t>(r.series), now_ns, r.rule.slow_window_ns);

            r.last.fast = fast.value;
            r.last.slow = slow.value;
            r.last.fast_weight = fast.weight;
            // "Sustained" requires the ring to actually cover the slow
            // window (half of it, at least): a two-sample burst must
            // not impersonate a 60 s burn right after startup.
            r.last.slow_covered = slow.points >= 2 &&
                                  slow.span_ns >= r.rule.slow_window_ns / 2;

            const bool has_traffic = fast.weight >= r.rule.min_weight;
            const bool fast_breach =
                has_traffic && fast.value >= r.rule.threshold;
            const bool slow_breach = r.last.slow_covered &&
                                     slow.weight >= r.rule.min_weight &&
                                     slow.value >= r.rule.threshold;

            HealthState target = HealthState::kOk;
            if (fast_breach) {
                target = slow_breach ? HealthState::kCritical
                                     : HealthState::kWarn;
            }

            HealthState next = r.state;
            if (target > r.state) {
                next = target; // escalate immediately
            } else if (target < r.state) {
                // De-escalate only after recovery_samples consecutive
                // calmer evaluations (hysteresis).
                if (++r.calm_evals >= std::max(1u, r.rule.recovery_samples)) {
                    next = target;
                }
            } else {
                r.calm_evals = 0;
            }
            if (next != r.state) {
                Transition t{now_ns, r.state, next};
                if (r.transition_size < r.transitions.size()) {
                    r.transitions[(r.transition_head + r.transition_size) %
                                  r.transitions.size()] = t;
                    ++r.transition_size;
                } else {
                    r.transitions[r.transition_head] = t;
                    r.transition_head =
                        (r.transition_head + 1) % r.transitions.size();
                }
                if (n_fired < fired.size()) {
                    fired[n_fired++] = {&r.rule, r.state, next};
                }
                r.state = next;
                r.calm_evals = 0;
            }
            r.last.state = r.state;
        }
    }
    if (hook) {
        for (size_t i = 0; i < n_fired; ++i) {
            hook(*fired[i].rule, fired[i].from, fired[i].to);
        }
    }
}

HealthState
SloEngine::overall() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    HealthState worst = HealthState::kOk;
    for (const Rule& r : rules_) worst = std::max(worst, r.state);
    return worst;
}

SloEngine::RuleStatus
SloEngine::status(size_t rule) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return rules_[rule].last;
}

void
SloEngine::to_json(std::string* out) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    HealthState worst = HealthState::kOk;
    for (const Rule& r : rules_) worst = std::max(worst, r.state);
    char buf[192];
    std::snprintf(buf, sizeof buf, "{\"state\": \"%s\", \"rules\": [",
                  to_string(worst));
    *out += buf;
    for (size_t i = 0; i < rules_.size(); ++i) {
        const Rule& r = rules_[i];
        std::snprintf(
            buf, sizeof buf,
            "%s\n{\"name\": \"%s\", \"series\": \"%s\", \"state\": \"%s\", "
            "\"threshold\": %g, \"fast\": %g, \"slow\": %g, "
            "\"fast_weight\": %g, \"slow_covered\": %s, \"transitions\": [",
            i == 0 ? "" : ",", r.rule.name.c_str(), r.rule.series.c_str(),
            to_string(r.state), r.rule.threshold, r.last.fast, r.last.slow,
            r.last.fast_weight, r.last.slow_covered ? "true" : "false");
        *out += buf;
        for (size_t j = 0; j < r.transition_size; ++j) {
            const Transition& t =
                r.transitions[(r.transition_head + j) % r.transitions.size()];
            std::snprintf(buf, sizeof buf,
                          "%s{\"t_ns\": %" PRIu64
                          ", \"from\": \"%s\", \"to\": \"%s\"}",
                          j == 0 ? "" : ",", t.t_ns, to_string(t.from),
                          to_string(t.to));
            *out += buf;
        }
        *out += "]}";
    }
    *out += "\n]}";
}

HealthMonitor::HealthMonitor(MetricSamplerConfig sampler_config,
                             SloEngineConfig slo_config)
    : sampler_(std::move(sampler_config)),
      slo_(std::move(slo_config), &sampler_)
{
}

void
HealthMonitor::set_incident_recorder(FlightRecorder* recorder)
{
    if (recorder == nullptr) return;
    slo_.set_transition_hook([recorder](const SloRule& rule, HealthState,
                                        HealthState to) {
        if (to != HealthState::kCritical) return;
        // Allocation here is fine: transitions are rare by
        // construction (hysteresis), and the dump itself writes a file.
        const std::string trigger = "slo:" + rule.name;
        recorder->trigger(trigger.c_str());
    });
    recorder->set_health_source(
        [this](std::string* out) { status_json(out); });
}

void
HealthMonitor::tick(uint64_t now_ns)
{
    if (sampler_.tick(now_ns)) slo_.evaluate(now_ns);
}

void
HealthMonitor::status_json(std::string* out) const
{
    *out += "{\"enabled\": true, \"health\": ";
    slo_.to_json(out);
    *out += ",\n\"samples\": ";
    sampler_.to_json(out);
    *out += "}";
}

} // namespace rococo::obs
