/// svcctl — live introspection CLI for a running validation service
/// (src/svc). Speaks the kStats wire op: the server answers with a
/// metrics-snapshot JSON without an engine pass and without counting
/// against the pending-request queue, so poking a loaded — even
/// saturated — server is always safe (tests/svc_test.cc pins that
/// down).
///
/// Usage:
///   svcctl [--socket=PATH] stats
///       Print the server's full metrics snapshot (JSON: counters,
///       gauges, histograms) to stdout.
///   svcctl [--socket=PATH] hist NAME
///       Print one histogram's summary line (count/mean/max/p50/p90/
///       p99), e.g. NAME = svc.stage.engine or svc.batch.rpc_ns.
///   svcctl [--socket=PATH] watch [--interval-ms=500] [--count=0]
///       Periodically print a one-line load summary (requests,
///       queue depth, window occupancy, open connections). count=0
///       runs until interrupted. A lost connection (server restart)
///       is survived: watch reconnects with bounded exponential
///       backoff and resumes, only giving up when the server stays
///       unreachable through the whole backoff budget.
///   svcctl [--socket=PATH] shards
///       Print the per-shard breakdown of a sharded server
///       (validations, aborts, window occupancy per shard, plus the
///       cross-shard fraction and the load-imbalance factor).
///   svcctl [--socket=PATH] top [--json]
///       Print the per-shard hot-key table (the space-saving top-K
///       sketch fed from conflicting addresses; requires a server
///       built with -DROCOCO_FORENSICS=ON and a nonzero
///       forensics_sample). --json dumps the raw reply instead of the
///       formatted table.
///   svcctl [--socket=PATH] dump
///       Ask the server's flight recorder for a manual incident dump;
///       prints the server-side path of the incident file. Fails (exit
///       1) when the server runs without a recorder.
///
/// Exit status: 0 on success, 1 on connection/protocol failure, 2 on
/// usage errors. (common/cli.h rejects positional arguments, so this
/// tool parses argv by hand.)
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "svc/wire.h"

namespace {

using rococo::svc::FrameReader;
using rococo::svc::MsgType;

void
usage(FILE* out)
{
    std::fprintf(out,
                 "usage: svcctl [--socket=PATH] stats\n"
                 "       svcctl [--socket=PATH] hist NAME\n"
                 "       svcctl [--socket=PATH] watch [--interval-ms=N]"
                 " [--count=N]\n"
                 "       svcctl [--socket=PATH] shards\n"
                 "       svcctl [--socket=PATH] top [--json]\n"
                 "       svcctl [--socket=PATH] dump\n");
}

int
connect_server(const std::string& path)
{
    const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        close(fd);
        return -1;
    }
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
        close(fd);
        return -1;
    }
    return fd;
}

/// One request/reply round trip on an established connection: send
/// @p frame, wait for the first frame of type @p reply_type, hand its
/// payload back. Returns false on any transport or protocol failure.
bool
round_trip(int fd, const std::vector<uint8_t>& frame, MsgType reply_type,
           std::string& json_out)
{
    size_t off = 0;
    while (off < frame.size()) {
        const ssize_t n =
            send(fd, frame.data() + off, frame.size() - off, MSG_NOSIGNAL);
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0) return false;
        off += static_cast<size_t>(n);
    }
    FrameReader reader;
    uint8_t buf[64 * 1024];
    for (;;) {
        const ssize_t n = recv(fd, buf, sizeof(buf), 0);
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0) return false;
        reader.append(buf, static_cast<size_t>(n));
        bool malformed = false;
        while (auto got = reader.next(&malformed)) {
            if (got->type != reply_type) continue;
            json_out.assign(reinterpret_cast<const char*>(got->payload),
                            got->size);
            return true;
        }
        if (malformed) return false;
    }
}

/// One kStats round trip on an established connection.
bool
fetch_stats(int fd, std::string& json_out)
{
    std::vector<uint8_t> frame;
    rococo::svc::encode_stats_request(frame);
    return round_trip(fd, frame, MsgType::kStatsReply, json_out);
}

/// Extract `"name": <value-or-object>` from the snapshot JSON. Good
/// enough for the exporter's fixed, non-nested format (registry.cc);
/// not a general JSON parser.
bool
extract_value(const std::string& json, const std::string& name,
              std::string& out)
{
    const std::string key = "\"" + name + "\":";
    const size_t at = json.find(key);
    if (at == std::string::npos) return false;
    size_t pos = at + key.size();
    while (pos < json.size() && json[pos] == ' ') ++pos;
    if (pos >= json.size()) return false;
    if (json[pos] == '{') {
        const size_t end = json.find('}', pos);
        if (end == std::string::npos) return false;
        out = json.substr(pos, end - pos + 1);
        return true;
    }
    size_t end = pos;
    while (end < json.size() && json[end] != ',' && json[end] != '\n' &&
           json[end] != '}') {
        ++end;
    }
    out = json.substr(pos, end - pos);
    return true;
}

double
extract_number(const std::string& json, const std::string& name)
{
    std::string text;
    if (!extract_value(json, name, text)) return 0.0;
    // Gauges nest the value: {"last": X, ...}.
    if (!text.empty() && text[0] == '{') {
        const size_t at = text.find("\"last\":");
        if (at == std::string::npos) return 0.0;
        return std::atof(text.c_str() + at + 7);
    }
    return std::atof(text.c_str());
}

int
cmd_stats(const std::string& socket_path)
{
    const int fd = connect_server(socket_path);
    if (fd < 0) {
        std::fprintf(stderr, "svcctl: cannot connect to %s\n",
                     socket_path.c_str());
        return 1;
    }
    std::string json;
    const bool ok = fetch_stats(fd, json);
    close(fd);
    if (!ok) {
        std::fprintf(stderr, "svcctl: stats request failed\n");
        return 1;
    }
    std::printf("%s\n", json.c_str());
    return 0;
}

int
cmd_hist(const std::string& socket_path, const std::string& name)
{
    const int fd = connect_server(socket_path);
    if (fd < 0) {
        std::fprintf(stderr, "svcctl: cannot connect to %s\n",
                     socket_path.c_str());
        return 1;
    }
    std::string json;
    const bool ok = fetch_stats(fd, json);
    close(fd);
    if (!ok) {
        std::fprintf(stderr, "svcctl: stats request failed\n");
        return 1;
    }
    std::string value;
    if (!extract_value(json, name, value) || value.empty() ||
        value[0] != '{') {
        std::fprintf(stderr, "svcctl: no histogram named %s\n",
                     name.c_str());
        return 1;
    }
    std::printf("%s: %s\n", name.c_str(), value.c_str());
    return 0;
}

int
cmd_shards(const std::string& socket_path)
{
    const int fd = connect_server(socket_path);
    if (fd < 0) {
        std::fprintf(stderr, "svcctl: cannot connect to %s\n",
                     socket_path.c_str());
        return 1;
    }
    std::string json;
    const bool ok = fetch_stats(fd, json);
    close(fd);
    if (!ok) {
        std::fprintf(stderr, "svcctl: stats request failed\n");
        return 1;
    }
    std::string probe;
    if (!extract_value(json, "shard.0.validations", probe)) {
        std::fprintf(stderr, "svcctl: server exports no shard metrics\n");
        return 1;
    }
    std::printf("%8s %14s %12s %12s\n", "shard", "validations", "aborts",
                "window");
    for (unsigned s = 0;; ++s) {
        const std::string prefix = "shard." + std::to_string(s);
        if (!extract_value(json, prefix + ".validations", probe)) break;
        std::printf("%8u %14.0f %12.0f %12.0f\n", s,
                    extract_number(json, prefix + ".validations"),
                    extract_number(json, prefix + ".aborts"),
                    extract_number(json, prefix + ".occupancy"));
    }
    std::printf("cross-shard: %.0f of %.0f (fraction %.4f), imbalance %.3f\n",
                extract_number(json, "shard.cross"),
                extract_number(json, "shard.validations"),
                extract_number(json, "shard.cross_fraction"),
                extract_number(json, "shard.imbalance"));
    return 0;
}

/// Formatted view of the kTopKReply JSON. The reply's shape is fixed
/// by ShardRouter::topk_json / ValidationPipeline::topk_json —
/// {"shards": [{"shard": S, "offered": N, "entries": [{"key": K,
/// "count": C, "error": E}, ...]}, ...]} — so a linear scan is enough;
/// this is not a general JSON parser.
void
print_topk_table(const std::string& json)
{
    std::printf("%8s %20s %12s %12s\n", "shard", "key", "count", "error");
    size_t pos = 0;
    size_t rows = 0;
    long shard = -1;
    for (;;) {
        const size_t shard_at = json.find("\"shard\":", pos);
        const size_t key_at = json.find("\"key\":", pos);
        if (key_at == std::string::npos) break;
        if (shard_at != std::string::npos && shard_at < key_at) {
            shard = std::atol(json.c_str() + shard_at + 8);
            pos = shard_at + 8;
            continue;
        }
        const size_t count_at = json.find("\"count\":", key_at);
        const size_t error_at = json.find("\"error\":", key_at);
        if (count_at == std::string::npos || error_at == std::string::npos) {
            break;
        }
        std::printf("%8ld %20llu %12llu %12llu\n", shard,
                    static_cast<unsigned long long>(
                        std::strtoull(json.c_str() + key_at + 6, nullptr, 10)),
                    static_cast<unsigned long long>(std::strtoull(
                        json.c_str() + count_at + 8, nullptr, 10)),
                    static_cast<unsigned long long>(std::strtoull(
                        json.c_str() + error_at + 8, nullptr, 10)));
        ++rows;
        pos = error_at + 8;
    }
    if (rows == 0) {
        std::printf("(no hot keys recorded — forensics sampling off, or no"
                    " conflicts yet)\n");
    }
}

int
cmd_top(const std::string& socket_path, bool raw_json)
{
    const int fd = connect_server(socket_path);
    if (fd < 0) {
        std::fprintf(stderr, "svcctl: cannot connect to %s\n",
                     socket_path.c_str());
        return 1;
    }
    std::vector<uint8_t> frame;
    rococo::svc::encode_topk_request(frame);
    std::string json;
    const bool ok = round_trip(fd, frame, MsgType::kTopKReply, json);
    close(fd);
    if (!ok) {
        std::fprintf(stderr, "svcctl: top request failed\n");
        return 1;
    }
    if (raw_json) {
        std::printf("%s\n", json.c_str());
    } else {
        print_topk_table(json);
    }
    return 0;
}

int
cmd_dump(const std::string& socket_path)
{
    const int fd = connect_server(socket_path);
    if (fd < 0) {
        std::fprintf(stderr, "svcctl: cannot connect to %s\n",
                     socket_path.c_str());
        return 1;
    }
    std::vector<uint8_t> frame;
    rococo::svc::encode_dump_request(frame);
    std::string json;
    const bool ok = round_trip(fd, frame, MsgType::kDumpReply, json);
    close(fd);
    if (!ok) {
        std::fprintf(stderr, "svcctl: dump request failed\n");
        return 1;
    }
    std::printf("%s\n", json.c_str());
    // {"ok": true, "path": "..."} on success; {"ok": false, ...} when
    // the server has no recorder or the write failed.
    return json.find("\"ok\": true") != std::string::npos ? 0 : 1;
}

int
cmd_watch(const std::string& socket_path, unsigned interval_ms,
          unsigned count)
{
    // One persistent connection: watch must observe the server, not
    // perturb it with a connect/close churn per sample. A failed round
    // trip means the server went away (restart, crash); instead of
    // dying with it, reconnect with bounded exponential backoff and
    // retry the same sample — only a server that stays down through
    // the whole backoff budget ends the watch.
    constexpr unsigned kBackoffStartMs = 50;
    constexpr unsigned kBackoffCapMs = 2000;
    constexpr unsigned kMaxAttempts = 60;
    auto reconnect = [&]() -> int {
        unsigned backoff_ms = kBackoffStartMs;
        for (unsigned attempt = 0; attempt < kMaxAttempts; ++attempt) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(backoff_ms));
            const int fd = connect_server(socket_path);
            if (fd >= 0) return fd;
            backoff_ms = std::min(backoff_ms * 2, kBackoffCapMs);
        }
        return -1;
    };
    int fd = connect_server(socket_path);
    if (fd < 0) {
        std::fprintf(stderr, "svcctl: waiting for %s\n",
                     socket_path.c_str());
        fd = reconnect();
        if (fd < 0) {
            std::fprintf(stderr, "svcctl: cannot connect to %s\n",
                         socket_path.c_str());
            return 1;
        }
    }
    std::printf("%12s %12s %12s %12s %12s\n", "requests", "queue", "window",
                "conns", "stats");
    for (unsigned i = 0; count == 0 || i < count;) {
        std::string json;
        if (!fetch_stats(fd, json)) {
            close(fd);
            std::fprintf(stderr, "svcctl: connection lost, reconnecting\n");
            fd = reconnect();
            if (fd < 0) {
                std::fprintf(stderr, "svcctl: server did not come back\n");
                return 1;
            }
            continue; // retry this sample on the fresh connection
        }
        std::printf("%12.0f %12.0f %12.0f %12.0f %12.0f\n",
                    extract_number(json, "svc.requests"),
                    extract_number(json, "svc.queue_depth"),
                    extract_number(json, "svc.window_occupancy"),
                    extract_number(json, "svc.connections_open"),
                    extract_number(json, "svc.stats"));
        std::fflush(stdout);
        ++i;
        if (count == 0 || i < count) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(interval_ms));
        }
    }
    close(fd);
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    std::string socket_path = "/tmp/rococo_svc.sock";
    unsigned interval_ms = 500;
    unsigned count = 0;
    std::string command;
    std::vector<std::string> operands;
    bool raw_json = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value_of = [&](const char* flag) -> const char* {
            const size_t len = std::strlen(flag);
            if (arg.compare(0, len, flag) != 0) return nullptr;
            if (arg.size() > len && arg[len] == '=') {
                return arg.c_str() + len + 1;
            }
            return nullptr;
        };
        if (const char* v = value_of("--socket")) {
            socket_path = v;
        } else if (const char* v = value_of("--interval-ms")) {
            interval_ms = static_cast<unsigned>(std::atoi(v));
        } else if (const char* v = value_of("--count")) {
            count = static_cast<unsigned>(std::atoi(v));
        } else if (arg == "--json") {
            raw_json = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(stdout);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "svcctl: unknown flag %s\n", arg.c_str());
            usage(stderr);
            return 2;
        } else if (command.empty()) {
            command = arg;
        } else {
            operands.push_back(arg);
        }
    }

    if (command == "stats" && operands.empty()) {
        return cmd_stats(socket_path);
    }
    if (command == "hist" && operands.size() == 1) {
        return cmd_hist(socket_path, operands[0]);
    }
    if (command == "watch" && operands.empty()) {
        if (interval_ms == 0) interval_ms = 1;
        return cmd_watch(socket_path, interval_ms, count);
    }
    if (command == "shards" && operands.empty()) {
        return cmd_shards(socket_path);
    }
    if (command == "top" && operands.empty()) {
        return cmd_top(socket_path, raw_json);
    }
    if (command == "dump" && operands.empty()) {
        return cmd_dump(socket_path);
    }
    usage(stderr);
    return 2;
}
