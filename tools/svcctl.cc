/// svcctl — live introspection CLI for a running validation service
/// (src/svc). Speaks the kStats wire op: the server answers with a
/// metrics-snapshot JSON without an engine pass and without counting
/// against the pending-request queue, so poking a loaded — even
/// saturated — server is always safe (tests/svc_test.cc pins that
/// down).
///
/// Usage:
///   svcctl [--socket=PATH] stats
///       Print the server's full metrics snapshot (JSON: counters,
///       gauges, histograms) to stdout.
///   svcctl [--socket=PATH] hist NAME
///       Print one histogram's summary line (count/mean/max/p50/p90/
///       p99), e.g. NAME = svc.stage.engine or svc.batch.rpc_ns.
///   svcctl [--socket=PATH] watch [--interval-ms=500] [--count=0]
///       Periodically print a one-line load summary (requests,
///       queue depth, window occupancy, open connections). count=0
///       runs until interrupted. A lost connection (server restart)
///       is survived: watch reconnects with bounded exponential
///       backoff and resumes, only giving up when the server stays
///       unreachable through the whole backoff budget.
///   svcctl [--socket=PATH] shards
///       Print the per-shard breakdown of a sharded server
///       (validations, aborts, window occupancy per shard, plus the
///       cross-shard fraction and the load-imbalance factor).
///   svcctl [--socket=PATH] top [--json]
///       Print the per-shard hot-key table (the space-saving top-K
///       sketch fed from conflicting addresses; requires a server
///       built with -DROCOCO_FORENSICS=ON and a nonzero
///       forensics_sample). --json dumps the raw reply instead of the
///       formatted table.
///   svcctl [--socket=PATH] dump
///       Ask the server's flight recorder for a manual incident dump;
///       prints the server-side path of the incident file. Fails (exit
///       1) when the server runs without a recorder.
///   svcctl [--socket=PATH] series
///       Dump the server's monitoring time-series + SLO health verdicts
///       as raw JSON (the kSeries reply).
///   svcctl [--socket=PATH] prom
///       Print the server's metrics in Prometheus text exposition
///       format (the kProm reply) — pipe into a textfile collector or
///       curl-replacement scrape job.
///   svcctl [--socket=PATH] monitor [--interval-ms=1000] [--once]
///       Live terminal dashboard: overall health badge, per-rule SLO
///       burn-rate table, per-series last/rate plus a sparkline over
///       the sampler ring, and the conflict hot-key line. Refreshes in
///       place on a tty; --once prints a single frame and exits 3 when
///       any SLO rule is critical (0 otherwise) so scripts can use it
///       as a health probe.
///
/// Exit status: 0 on success, 1 on connection/protocol failure, 2 on
/// usage errors, 3 for `monitor --once` observing a critical health
/// state. (common/cli.h rejects positional arguments, so this tool
/// parses argv by hand.)
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>
#include <thread>
#include <vector>

#include "svc/wire.h"

namespace {

using rococo::svc::FrameReader;
using rococo::svc::MsgType;

void
usage(FILE* out)
{
    std::fprintf(out,
                 "usage: svcctl [--socket=PATH] stats\n"
                 "       svcctl [--socket=PATH] hist NAME\n"
                 "       svcctl [--socket=PATH] watch [--interval-ms=N]"
                 " [--count=N]\n"
                 "       svcctl [--socket=PATH] shards\n"
                 "       svcctl [--socket=PATH] top [--json]\n"
                 "       svcctl [--socket=PATH] dump\n"
                 "       svcctl [--socket=PATH] series\n"
                 "       svcctl [--socket=PATH] prom\n"
                 "       svcctl [--socket=PATH] monitor [--interval-ms=N]"
                 " [--once]\n");
}

int
connect_server(const std::string& path)
{
    const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        close(fd);
        return -1;
    }
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
        close(fd);
        return -1;
    }
    return fd;
}

/// One request/reply round trip on an established connection: send
/// @p frame, wait for the first frame of type @p reply_type, hand its
/// payload back. Returns false on any transport or protocol failure.
bool
round_trip(int fd, const std::vector<uint8_t>& frame, MsgType reply_type,
           std::string& json_out)
{
    size_t off = 0;
    while (off < frame.size()) {
        const ssize_t n =
            send(fd, frame.data() + off, frame.size() - off, MSG_NOSIGNAL);
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0) return false;
        off += static_cast<size_t>(n);
    }
    FrameReader reader;
    uint8_t buf[64 * 1024];
    for (;;) {
        const ssize_t n = recv(fd, buf, sizeof(buf), 0);
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0) return false;
        reader.append(buf, static_cast<size_t>(n));
        bool malformed = false;
        while (auto got = reader.next(&malformed)) {
            if (got->type != reply_type) continue;
            json_out.assign(reinterpret_cast<const char*>(got->payload),
                            got->size);
            return true;
        }
        if (malformed) return false;
    }
}

/// One kStats round trip on an established connection.
bool
fetch_stats(int fd, std::string& json_out)
{
    std::vector<uint8_t> frame;
    rococo::svc::encode_stats_request(frame);
    return round_trip(fd, frame, MsgType::kStatsReply, json_out);
}

/// Extract `"name": <value-or-object>` from the snapshot JSON. Good
/// enough for the exporter's fixed, non-nested format (registry.cc);
/// not a general JSON parser.
bool
extract_value(const std::string& json, const std::string& name,
              std::string& out)
{
    const std::string key = "\"" + name + "\":";
    const size_t at = json.find(key);
    if (at == std::string::npos) return false;
    size_t pos = at + key.size();
    while (pos < json.size() && json[pos] == ' ') ++pos;
    if (pos >= json.size()) return false;
    if (json[pos] == '{') {
        const size_t end = json.find('}', pos);
        if (end == std::string::npos) return false;
        out = json.substr(pos, end - pos + 1);
        return true;
    }
    size_t end = pos;
    while (end < json.size() && json[end] != ',' && json[end] != '\n' &&
           json[end] != '}') {
        ++end;
    }
    out = json.substr(pos, end - pos);
    return true;
}

double
extract_number(const std::string& json, const std::string& name)
{
    std::string text;
    if (!extract_value(json, name, text)) return 0.0;
    // Gauges nest the value: {"last": X, ...}.
    if (!text.empty() && text[0] == '{') {
        const size_t at = text.find("\"last\":");
        if (at == std::string::npos) return 0.0;
        return std::atof(text.c_str() + at + 7);
    }
    return std::atof(text.c_str());
}

// ---- kSeries reply parsing ---------------------------------------------
//
// The reply is {"enabled": B, "health": {...}, "samples": {...}} with
// fixed key order (obs/health.cc, obs/timeseries.cc): every rule and
// every series object starts on its own line with {"name": "..." and
// ends at the first "]}" after it (the transitions / points array
// close). A linear scan is enough; this is not a general JSON parser.

/// Split the reply into the health and samples sections so rule and
/// series objects (which share the {"name": ... shape) don't mix.
void
split_series_reply(const std::string& json, std::string& health,
                   std::string& samples)
{
    const size_t at = json.find("\"samples\":");
    if (at == std::string::npos) {
        health = json;
        samples.clear();
        return;
    }
    health = json.substr(0, at);
    samples = json.substr(at);
}

/// All {"name": ...}-objects in a section, one per entry.
std::vector<std::string>
split_named_objects(const std::string& section)
{
    std::vector<std::string> out;
    size_t pos = 0;
    while ((pos = section.find("\n{\"name\": \"", pos)) !=
           std::string::npos) {
        const size_t end = section.find("]}", pos);
        if (end == std::string::npos) break;
        out.push_back(section.substr(pos + 1, end + 2 - (pos + 1)));
        pos = end;
    }
    return out;
}

/// `"name": <number>` from one object; false when missing or null
/// (a counter/ratio series has rate null until two samples exist).
bool
extract_opt_number(const std::string& obj, const std::string& name,
                   double* out)
{
    std::string text;
    if (!extract_value(obj, name, text)) return false;
    if (text.compare(0, 4, "null") == 0) return false;
    *out = std::atof(text.c_str());
    return true;
}

std::string
extract_string(const std::string& obj, const std::string& name)
{
    std::string text;
    if (!extract_value(obj, name, text)) return "";
    // Strip the quotes: extract_value hands back "value" verbatim.
    if (text.size() >= 2 && text.front() == '"') {
        const size_t close = text.find('"', 1);
        if (close != std::string::npos) return text.substr(1, close - 1);
    }
    return text;
}

/// The per-point values of one series object's ring ([t, raw, value]
/// triples; null values — unprimed deltas — are skipped).
std::vector<double>
parse_point_values(const std::string& obj)
{
    std::vector<double> values;
    const size_t at = obj.find("\"points\": [");
    if (at == std::string::npos) return values;
    size_t pos = at + 11;
    while ((pos = obj.find('[', pos)) != std::string::npos) {
        const size_t close = obj.find(']', pos);
        if (close == std::string::npos) break;
        const std::string triple = obj.substr(pos + 1, close - pos - 1);
        const size_t c1 = triple.find(',');
        const size_t c2 =
            c1 == std::string::npos ? c1 : triple.find(',', c1 + 1);
        if (c2 != std::string::npos &&
            triple.find("null", c2) == std::string::npos) {
            values.push_back(std::atof(triple.c_str() + c2 + 1));
        }
        pos = close + 1;
    }
    return values;
}

/// Render up to the last @p width point values as a unicode sparkline.
std::string
sparkline(const std::vector<double>& values, size_t width)
{
    static const char* kBars[] = {"▁", "▂", "▃", "▄",
                                  "▅", "▆", "▇", "█"};
    if (values.empty()) return "";
    const size_t first = values.size() > width ? values.size() - width : 0;
    double lo = values[first];
    double hi = values[first];
    for (size_t i = first; i < values.size(); ++i) {
        lo = std::min(lo, values[i]);
        hi = std::max(hi, values[i]);
    }
    std::string out;
    for (size_t i = first; i < values.size(); ++i) {
        const double span = hi - lo;
        const int level =
            span <= 0.0 ? 0
                        : static_cast<int>((values[i] - lo) / span * 7.0);
        out += kBars[std::clamp(level, 0, 7)];
    }
    return out;
}

/// Humanize a sample value: large magnitudes collapse to k/M/G so the
/// dashboard columns stay aligned (latencies arrive in nanoseconds).
std::string
format_value(double v)
{
    char buf[32];
    const double a = std::fabs(v);
    if (a >= 1e9) {
        std::snprintf(buf, sizeof buf, "%.2fG", v / 1e9);
    } else if (a >= 1e6) {
        std::snprintf(buf, sizeof buf, "%.2fM", v / 1e6);
    } else if (a >= 1e4) {
        std::snprintf(buf, sizeof buf, "%.1fk", v / 1e3);
    } else if (a == std::floor(a)) {
        std::snprintf(buf, sizeof buf, "%.0f", v);
    } else {
        std::snprintf(buf, sizeof buf, "%.3f", v);
    }
    return buf;
}

/// One kSeries round trip on an established connection.
bool
fetch_series(int fd, std::string& json_out)
{
    std::vector<uint8_t> frame;
    rococo::svc::encode_series_request(frame);
    return round_trip(fd, frame, MsgType::kSeriesReply, json_out);
}

int
cmd_stats(const std::string& socket_path)
{
    const int fd = connect_server(socket_path);
    if (fd < 0) {
        std::fprintf(stderr, "svcctl: cannot connect to %s\n",
                     socket_path.c_str());
        return 1;
    }
    std::string json;
    const bool ok = fetch_stats(fd, json);
    close(fd);
    if (!ok) {
        std::fprintf(stderr, "svcctl: stats request failed\n");
        return 1;
    }
    std::printf("%s\n", json.c_str());
    return 0;
}

int
cmd_hist(const std::string& socket_path, const std::string& name)
{
    const int fd = connect_server(socket_path);
    if (fd < 0) {
        std::fprintf(stderr, "svcctl: cannot connect to %s\n",
                     socket_path.c_str());
        return 1;
    }
    std::string json;
    const bool ok = fetch_stats(fd, json);
    close(fd);
    if (!ok) {
        std::fprintf(stderr, "svcctl: stats request failed\n");
        return 1;
    }
    std::string value;
    if (!extract_value(json, name, value) || value.empty() ||
        value[0] != '{') {
        std::fprintf(stderr, "svcctl: no histogram named %s\n",
                     name.c_str());
        return 1;
    }
    std::printf("%s: %s\n", name.c_str(), value.c_str());
    return 0;
}

int
cmd_shards(const std::string& socket_path)
{
    const int fd = connect_server(socket_path);
    if (fd < 0) {
        std::fprintf(stderr, "svcctl: cannot connect to %s\n",
                     socket_path.c_str());
        return 1;
    }
    std::string json;
    const bool ok = fetch_stats(fd, json);
    close(fd);
    if (!ok) {
        std::fprintf(stderr, "svcctl: stats request failed\n");
        return 1;
    }
    std::string probe;
    if (!extract_value(json, "shard.0.validations", probe)) {
        std::fprintf(stderr, "svcctl: server exports no shard metrics\n");
        return 1;
    }
    std::printf("%8s %14s %12s %12s\n", "shard", "validations", "aborts",
                "window");
    for (unsigned s = 0;; ++s) {
        const std::string prefix = "shard." + std::to_string(s);
        if (!extract_value(json, prefix + ".validations", probe)) break;
        std::printf("%8u %14.0f %12.0f %12.0f\n", s,
                    extract_number(json, prefix + ".validations"),
                    extract_number(json, prefix + ".aborts"),
                    extract_number(json, prefix + ".occupancy"));
    }
    std::printf("cross-shard: %.0f of %.0f (fraction %.4f), imbalance %.3f\n",
                extract_number(json, "shard.cross"),
                extract_number(json, "shard.validations"),
                extract_number(json, "shard.cross_fraction"),
                extract_number(json, "shard.imbalance"));
    return 0;
}

/// Formatted view of the kTopKReply JSON. The reply's shape is fixed
/// by ShardRouter::topk_json / ValidationPipeline::topk_json —
/// {"shards": [{"shard": S, "offered": N, "entries": [{"key": K,
/// "count": C, "error": E}, ...]}, ...]} — so a linear scan is enough;
/// this is not a general JSON parser.
void
print_topk_table(const std::string& json)
{
    std::printf("%8s %20s %12s %12s\n", "shard", "key", "count", "error");
    size_t pos = 0;
    size_t rows = 0;
    long shard = -1;
    for (;;) {
        const size_t shard_at = json.find("\"shard\":", pos);
        const size_t key_at = json.find("\"key\":", pos);
        if (key_at == std::string::npos) break;
        if (shard_at != std::string::npos && shard_at < key_at) {
            shard = std::atol(json.c_str() + shard_at + 8);
            pos = shard_at + 8;
            continue;
        }
        const size_t count_at = json.find("\"count\":", key_at);
        const size_t error_at = json.find("\"error\":", key_at);
        if (count_at == std::string::npos || error_at == std::string::npos) {
            break;
        }
        std::printf("%8ld %20llu %12llu %12llu\n", shard,
                    static_cast<unsigned long long>(
                        std::strtoull(json.c_str() + key_at + 6, nullptr, 10)),
                    static_cast<unsigned long long>(std::strtoull(
                        json.c_str() + count_at + 8, nullptr, 10)),
                    static_cast<unsigned long long>(std::strtoull(
                        json.c_str() + error_at + 8, nullptr, 10)));
        ++rows;
        pos = error_at + 8;
    }
    if (rows == 0) {
        std::printf("(no hot keys recorded — forensics sampling off, or no"
                    " conflicts yet)\n");
    }
}

int
cmd_top(const std::string& socket_path, bool raw_json)
{
    const int fd = connect_server(socket_path);
    if (fd < 0) {
        std::fprintf(stderr, "svcctl: cannot connect to %s\n",
                     socket_path.c_str());
        return 1;
    }
    std::vector<uint8_t> frame;
    rococo::svc::encode_topk_request(frame);
    std::string json;
    const bool ok = round_trip(fd, frame, MsgType::kTopKReply, json);
    close(fd);
    if (!ok) {
        std::fprintf(stderr, "svcctl: top request failed\n");
        return 1;
    }
    if (raw_json) {
        std::printf("%s\n", json.c_str());
    } else {
        print_topk_table(json);
    }
    return 0;
}

int
cmd_dump(const std::string& socket_path)
{
    const int fd = connect_server(socket_path);
    if (fd < 0) {
        std::fprintf(stderr, "svcctl: cannot connect to %s\n",
                     socket_path.c_str());
        return 1;
    }
    std::vector<uint8_t> frame;
    rococo::svc::encode_dump_request(frame);
    std::string json;
    const bool ok = round_trip(fd, frame, MsgType::kDumpReply, json);
    close(fd);
    if (!ok) {
        std::fprintf(stderr, "svcctl: dump request failed\n");
        return 1;
    }
    std::printf("%s\n", json.c_str());
    // {"ok": true, "path": "..."} on success; {"ok": false, ...} when
    // the server has no recorder or the write failed.
    return json.find("\"ok\": true") != std::string::npos ? 0 : 1;
}

int
cmd_series(const std::string& socket_path)
{
    const int fd = connect_server(socket_path);
    if (fd < 0) {
        std::fprintf(stderr, "svcctl: cannot connect to %s\n",
                     socket_path.c_str());
        return 1;
    }
    std::string json;
    const bool ok = fetch_series(fd, json);
    close(fd);
    if (!ok) {
        std::fprintf(stderr, "svcctl: series request failed\n");
        return 1;
    }
    std::printf("%s\n", json.c_str());
    return 0;
}

int
cmd_prom(const std::string& socket_path)
{
    const int fd = connect_server(socket_path);
    if (fd < 0) {
        std::fprintf(stderr, "svcctl: cannot connect to %s\n",
                     socket_path.c_str());
        return 1;
    }
    std::vector<uint8_t> frame;
    rococo::svc::encode_prom_request(frame);
    std::string text;
    const bool ok = round_trip(fd, frame, MsgType::kPromReply, text);
    close(fd);
    if (!ok) {
        std::fprintf(stderr, "svcctl: prom request failed\n");
        return 1;
    }
    // The payload is already the text exposition, newline-terminated.
    std::fputs(text.c_str(), stdout);
    return 0;
}

/// Render one monitor frame from a kSeries reply (plus the optional
/// kTopK reply for the hot-key line). Returns the overall health state
/// string so the caller can derive the --once exit status.
std::string
print_monitor_frame(const std::string& series_json,
                    const std::string& topk_json)
{
    std::string health;
    std::string samples;
    split_series_reply(series_json, health, samples);
    const std::string overall = extract_string(health, "state");

    char clock[32] = "";
    const std::time_t now = std::time(nullptr);
    std::tm tm_buf{};
    if (localtime_r(&now, &tm_buf) != nullptr) {
        std::strftime(clock, sizeof clock, "%H:%M:%S", &tm_buf);
    }
    std::printf("rococo monitor  %s   health: %s\n", clock,
                overall.empty() ? "?" : overall.c_str());

    const std::vector<std::string> rules = split_named_objects(health);
    if (!rules.empty()) {
        std::printf("\n%-16s %-24s %-9s %10s %10s %10s\n", "rule", "series",
                    "state", "threshold", "fast", "slow");
        for (const std::string& rule : rules) {
            double threshold = 0.0;
            double fast = 0.0;
            double slow = 0.0;
            extract_opt_number(rule, "threshold", &threshold);
            extract_opt_number(rule, "fast", &fast);
            extract_opt_number(rule, "slow", &slow);
            std::printf("%-16s %-24s %-9s %10s %10s %10s\n",
                        extract_string(rule, "name").c_str(),
                        extract_string(rule, "series").c_str(),
                        extract_string(rule, "state").c_str(),
                        format_value(threshold).c_str(),
                        format_value(fast).c_str(),
                        format_value(slow).c_str());
        }
    }

    const std::vector<std::string> series = split_named_objects(samples);
    std::printf("\n%-24s %10s %12s  %s\n", "series", "last", "rate",
                "trend");
    for (const std::string& s : series) {
        double last = 0.0;
        double rate = 0.0;
        const bool has_last = extract_opt_number(s, "last", &last);
        const bool has_rate = extract_opt_number(s, "rate", &rate);
        const std::string kind = extract_string(s, "kind");
        // Rate is per-second only for counter series; for the sampled
        // kinds (gauge/quantile/callback/ratio) the windowed value is
        // the level itself, which "last" already shows.
        std::string rate_text = "-";
        if (has_rate && kind == "counter") {
            rate_text = format_value(rate) + "/s";
        } else if (has_rate && kind == "ratio") {
            rate_text = format_value(rate);
        }
        std::printf("%-24s %10s %12s  %s\n",
                    extract_string(s, "name").c_str(),
                    has_last ? format_value(last).c_str() : "-",
                    rate_text.c_str(),
                    sparkline(parse_point_values(s), 32).c_str());
    }
    if (series.empty()) {
        std::printf("(server runs without a monitor — start it with"
                    " monitor.enabled)\n");
    }

    // Hot keys, compressed to one line (full table: svcctl top).
    std::printf("\nhot keys:");
    size_t shown = 0;
    size_t pos = 0;
    while (shown < 6) {
        const size_t key_at = topk_json.find("\"key\":", pos);
        if (key_at == std::string::npos) break;
        const size_t count_at = topk_json.find("\"count\":", key_at);
        if (count_at == std::string::npos) break;
        std::printf(" %llu(%llu)",
                    static_cast<unsigned long long>(std::strtoull(
                        topk_json.c_str() + key_at + 6, nullptr, 10)),
                    static_cast<unsigned long long>(std::strtoull(
                        topk_json.c_str() + count_at + 8, nullptr, 10)));
        ++shown;
        pos = count_at + 8;
    }
    std::printf("%s\n", shown == 0 ? " (none)" : "");
    return overall;
}

int
cmd_monitor(const std::string& socket_path, unsigned interval_ms,
            unsigned count, bool once)
{
    const int fd = connect_server(socket_path);
    if (fd < 0) {
        std::fprintf(stderr, "svcctl: cannot connect to %s\n",
                     socket_path.c_str());
        return 1;
    }
    const bool tty = isatty(STDOUT_FILENO) != 0;
    int status = 0;
    for (unsigned i = 0; once || count == 0 || i < count;) {
        std::string series_json;
        if (!fetch_series(fd, series_json)) {
            close(fd);
            std::fprintf(stderr, "svcctl: series request failed\n");
            return 1;
        }
        std::vector<uint8_t> frame;
        rococo::svc::encode_topk_request(frame);
        std::string topk_json;
        if (!round_trip(fd, frame, MsgType::kTopKReply, topk_json)) {
            close(fd);
            std::fprintf(stderr, "svcctl: top request failed\n");
            return 1;
        }
        if (tty && !once) {
            std::printf("\033[H\033[J"); // home + clear: redraw in place
        }
        const std::string overall =
            print_monitor_frame(series_json, topk_json);
        std::fflush(stdout);
        status = overall == "critical" ? 3 : 0;
        if (once) break;
        ++i;
        if (count == 0 || i < count) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(interval_ms));
        }
    }
    close(fd);
    return once ? status : 0;
}

int
cmd_watch(const std::string& socket_path, unsigned interval_ms,
          unsigned count)
{
    // One persistent connection: watch must observe the server, not
    // perturb it with a connect/close churn per sample. A failed round
    // trip means the server went away (restart, crash); instead of
    // dying with it, reconnect with bounded exponential backoff and
    // retry the same sample — only a server that stays down through
    // the whole backoff budget ends the watch.
    constexpr unsigned kBackoffStartMs = 50;
    constexpr unsigned kBackoffCapMs = 2000;
    constexpr unsigned kMaxAttempts = 60;
    auto reconnect = [&]() -> int {
        unsigned backoff_ms = kBackoffStartMs;
        for (unsigned attempt = 0; attempt < kMaxAttempts; ++attempt) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(backoff_ms));
            const int fd = connect_server(socket_path);
            if (fd >= 0) return fd;
            backoff_ms = std::min(backoff_ms * 2, kBackoffCapMs);
        }
        return -1;
    };
    int fd = connect_server(socket_path);
    if (fd < 0) {
        std::fprintf(stderr, "svcctl: waiting for %s\n",
                     socket_path.c_str());
        fd = reconnect();
        if (fd < 0) {
            std::fprintf(stderr, "svcctl: cannot connect to %s\n",
                         socket_path.c_str());
            return 1;
        }
    }
    // Watch rides the kSeries op so its request rate is the *server's*
    // windowed rate (the same number monitor and the SLO rules see),
    // not a client-side delta between two kStats snapshots. A server
    // without a monitor ("enabled": false) falls back to raw kStats
    // totals; a rate column shows '-' until the sampler has two points.
    // workerq = summed svc.worker.<i>.queue_depth across the engine
    // workers of a multi-threaded server (the backlog handed off but
    // not yet validated); '-' on a single-threaded server, which has
    // no worker series.
    std::printf("%12s %12s %12s %12s %12s %10s\n", "req/s", "queue",
                "window", "conns", "workerq", "health");
    bool legacy_noted = false;
    for (unsigned i = 0; count == 0 || i < count;) {
        std::string json;
        if (!fetch_series(fd, json)) {
            close(fd);
            std::fprintf(stderr, "svcctl: connection lost, reconnecting\n");
            fd = reconnect();
            if (fd < 0) {
                std::fprintf(stderr, "svcctl: server did not come back\n");
                return 1;
            }
            continue; // retry this sample on the fresh connection
        }
        if (json.find("\"enabled\": false") != std::string::npos) {
            if (!legacy_noted) {
                std::fprintf(stderr, "svcctl: server runs without a"
                                     " monitor; showing kStats totals\n");
                legacy_noted = true;
            }
            if (!fetch_stats(fd, json)) {
                close(fd);
                std::fprintf(stderr,
                             "svcctl: connection lost, reconnecting\n");
                fd = reconnect();
                if (fd < 0) {
                    std::fprintf(stderr,
                                 "svcctl: server did not come back\n");
                    return 1;
                }
                continue;
            }
            std::printf("%12.0f %12.0f %12.0f %12.0f %12s %10s\n",
                        extract_number(json, "svc.requests"),
                        extract_number(json, "svc.queue_depth"),
                        extract_number(json, "svc.window_occupancy"),
                        extract_number(json, "svc.connections_open"), "-",
                        "-");
        } else {
            std::string health;
            std::string samples;
            split_series_reply(json, health, samples);
            auto series_field = [&](const char* name, const char* field,
                                    std::string& out) {
                for (const std::string& s : split_named_objects(samples)) {
                    if (extract_string(s, "name") != name) continue;
                    double v = 0.0;
                    if (extract_opt_number(s, field, &v)) {
                        out = format_value(v);
                    }
                    return;
                }
            };
            std::string rate = "-";
            std::string queue = "-";
            std::string window = "-";
            std::string conns = "-";
            series_field("svc.requests", "rate", rate);
            series_field("svc.queue_depth", "last", queue);
            series_field("svc.window_occupancy", "last", window);
            series_field("svc.connections_open", "last", conns);
            // Sum the per-worker queue depths; absent series means a
            // single-threaded server.
            std::string workerq = "-";
            {
                double total = 0.0;
                bool any = false;
                for (const std::string& s : split_named_objects(samples)) {
                    const std::string name = extract_string(s, "name");
                    if (name.rfind("svc.worker.", 0) != 0 ||
                        name.find(".queue_depth") == std::string::npos) {
                        continue;
                    }
                    double v = 0.0;
                    if (extract_opt_number(s, "last", &v)) {
                        total += v;
                        any = true;
                    }
                }
                if (any) workerq = format_value(total);
            }
            const std::string overall = extract_string(health, "state");
            std::printf("%12s %12s %12s %12s %12s %10s\n", rate.c_str(),
                        queue.c_str(), window.c_str(), conns.c_str(),
                        workerq.c_str(),
                        overall.empty() ? "-" : overall.c_str());
        }
        std::fflush(stdout);
        ++i;
        if (count == 0 || i < count) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(interval_ms));
        }
    }
    close(fd);
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    std::string socket_path = "/tmp/rococo_svc.sock";
    unsigned interval_ms = 500;
    unsigned count = 0;
    std::string command;
    std::vector<std::string> operands;
    bool raw_json = false;
    bool once = false;
    bool interval_set = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value_of = [&](const char* flag) -> const char* {
            const size_t len = std::strlen(flag);
            if (arg.compare(0, len, flag) != 0) return nullptr;
            if (arg.size() > len && arg[len] == '=') {
                return arg.c_str() + len + 1;
            }
            return nullptr;
        };
        if (const char* v = value_of("--socket")) {
            socket_path = v;
        } else if (const char* v = value_of("--interval-ms")) {
            interval_ms = static_cast<unsigned>(std::atoi(v));
            interval_set = true;
        } else if (const char* v = value_of("--count")) {
            count = static_cast<unsigned>(std::atoi(v));
        } else if (arg == "--json") {
            raw_json = true;
        } else if (arg == "--once") {
            once = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(stdout);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "svcctl: unknown flag %s\n", arg.c_str());
            usage(stderr);
            return 2;
        } else if (command.empty()) {
            command = arg;
        } else {
            operands.push_back(arg);
        }
    }

    if (command == "stats" && operands.empty()) {
        return cmd_stats(socket_path);
    }
    if (command == "hist" && operands.size() == 1) {
        return cmd_hist(socket_path, operands[0]);
    }
    if (command == "watch" && operands.empty()) {
        if (interval_ms == 0) interval_ms = 1;
        return cmd_watch(socket_path, interval_ms, count);
    }
    if (command == "shards" && operands.empty()) {
        return cmd_shards(socket_path);
    }
    if (command == "top" && operands.empty()) {
        return cmd_top(socket_path, raw_json);
    }
    if (command == "dump" && operands.empty()) {
        return cmd_dump(socket_path);
    }
    if (command == "series" && operands.empty()) {
        return cmd_series(socket_path);
    }
    if (command == "prom" && operands.empty()) {
        return cmd_prom(socket_path);
    }
    if (command == "monitor" && operands.empty()) {
        if (!interval_set) interval_ms = 1000; // calmer monitor default
        if (interval_ms == 0) interval_ms = 1;
        return cmd_monitor(socket_path, interval_ms, count, once);
    }
    usage(stderr);
    return 2;
}
